//! Subcommand implementations.

use std::fs;

use dna_bench::topk_bench;
use dna_lint::{
    lint_batch_order, lint_chain, lint_circuit, lint_config, lint_dirty_closure,
    lint_dirty_closure_certified, lint_result, lint_sched_replay, lint_timing, Diagnostics,
};
use dna_netlist::generator::{generate, GeneratorConfig};
use dna_netlist::{format, suite, Circuit, CouplingId};
use dna_noise::{glitch, CouplingMask, NoiseAnalysis, NoiseConfig};
use dna_sta::{critical_path, top_k_paths, LinearDelayModel, StaConfig, TimingReport};
use dna_topk::CouplingSet;
use dna_topk::{
    chain_summary_checked, commit_chain, ChainFault, CommitOptions, Damping, MaskDelta, Mode,
    RecordKind, SaveKind, TopKAnalysis, TopKConfig, TopKResult, WhatIfBatch, WhatIfSession,
};

use crate::opts::Opts;

const USAGE: &str = "\
usage: dna <command> [options]

commands:
  generate  --gates N --couplings N [--seed S] [--bench i1..i10] [-o file]
  analyze   <file.ckt> [--seed S]         iterative noise analysis report
  topk      <file.ckt> --mode add|del -k N [--peel] [--audit]
            [--threads N] [--victim-budget N] [--global-budget N]
            [--deadline-ms MS]
                                          budgets degrade soundly: the
                                          result is marked a lower bound;
                                          --peel rounds run incrementally,
                                          --audit re-checks them against
                                          the from-scratch reference;
                                          --threads 0 (default) resolves
                                          to host parallelism — any value
                                          is bit-identical
  whatif    <file.ckt> [--mode add|del] [-k N] [--audit] [--threads N]
            [--damping structural|semantic]
            [--save FILE] [--load FILE]   fix-loop: run, remove the worst
            [--compact] [--history [GEN]] set, re-verify incrementally;
            [--batch FILE] [--fingerprint] --damping semantic (default)
                                          skips victims the corridor
                                          prover certifies clean, never
                                          changing an output bit; --audit
                                          re-verifies certificates and
                                          spot-checks proven-clean victims
                                          against from-scratch; sessions
                                          persist to crash-safe generation
                                          chains: --save after --load
                                          appends a delta record of only
                                          the dirty victims, --compact
                                          rewrites the chain as a single
                                          checkpoint, --history lists the
                                          chain (with GEN: replays that
                                          generation bit-exactly); corrupt
                                          chains fall back to a full
                                          sweep; --batch evaluates
                                          one scenario per line of FILE
                                          (tokens -ID / +ID remove or
                                          restore coupling ID, # starts a
                                          comment) sharing closure and
                                          sweep work across scenarios
  paths     <file.ckt> [-k N]             top-k critical paths
  glitch    <file.ckt> [--margin 0.4]     functional noise check
  lint      <file.ckt> [--json] [--deep]  verify IR and analysis invariants
  bench     [--json] [--out FILE] [--circuits i1,i5,i10] [--k N]
            [--samples N] [--seed S] [--quick] [--check FILE]
                                          serial-vs-parallel top-k benchmark
  serve     [--port N] [--capacity N] [--max-queue N]
            [--victim-budget-cap N] [--global-budget-cap N]
            [--deadline-cap-ms MS]        loopback what-if daemon: holds hot
            [--dir DIR] [--recover]       sessions per circuit (LRU-spilled
                                          to artifacts past --capacity),
                                          coalesces queued scenarios into
                                          shared batch sweeps, quarantines
                                          poisoned tenants; --port 0 picks
                                          an ephemeral port and announces
                                          it on stdout; line-delimited JSON
                                          (ops: open scenario batch commit
                                          query evict stats shutdown);
                                          --dir makes tenants durable
                                          (generation chains + a tenant
                                          registry under DIR, flushed on
                                          SIGINT/SIGTERM/shutdown);
                                          --recover replays the registry
                                          at startup, repairing torn
                                          chains and quarantining
                                          unrecoverable tenants
  client    --port N [--no-retry]        send JSON request lines to a
            [REQUEST...]                  running daemon (or pipe them on
                                          stdin) and print the responses;
                                          connects with bounded
                                          exponential-backoff retry unless
                                          --no-retry
  help                                    this message";

/// Routes the parsed command line to a subcommand.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, bad flags, I/O
/// failures and analysis errors.
pub fn dispatch(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args);
    match opts.positional(0) {
        Some("generate") => cmd_generate(&opts),
        Some("analyze") => cmd_analyze(&opts),
        Some("topk") => cmd_topk(&opts),
        Some("whatif") => cmd_whatif(&opts),
        Some("paths") => cmd_paths(&opts),
        Some("glitch") => cmd_glitch(&opts),
        Some("lint") => cmd_lint(&opts),
        Some("bench") => cmd_bench(&opts),
        Some("serve") => crate::serve_cmd::cmd_serve(&opts),
        Some("client") => crate::serve_cmd::cmd_client(&opts),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn load_circuit(opts: &Opts) -> Result<Circuit, String> {
    let path = opts.positional(1).ok_or_else(|| "expected a .ckt file argument".to_owned())?;
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    format::parse(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let seed: u64 = opts.num("seed", 42)?;
    let circuit = if let Some(bench) = opts.flag("bench") {
        suite::benchmark(bench, seed).map_err(|e| e.to_string())?
    } else {
        let gates: usize = opts.num("gates", 100)?;
        let couplings: usize = opts.num("couplings", 3 * gates)?;
        generate(&GeneratorConfig::new(gates, couplings).with_seed(seed))
            .map_err(|e| e.to_string())?
    };
    let text = format::write(&circuit);
    match opts.flag("o") {
        Some(path) => {
            fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {} ({})", path, circuit.stats());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_analyze(opts: &Opts) -> Result<(), String> {
    let circuit = load_circuit(opts)?;
    let engine = NoiseAnalysis::new(&circuit, NoiseConfig::default());
    let report = engine.run().map_err(|e| e.to_string())?;
    let quiet = engine.run_with_mask(&CouplingMask::none(&circuit)).map_err(|e| e.to_string())?;

    println!("design: {}", circuit.stats());
    println!(
        "delay: {:.3} ns noisy / {:.3} ns noiseless ({:+.1} ps crosstalk, {} iterations{})",
        report.circuit_delay() / 1000.0,
        quiet.circuit_delay() / 1000.0,
        report.total_delay_noise(),
        report.iterations(),
        if report.converged() { "" } else { ", NOT converged" },
    );

    let mut victims: Vec<_> =
        circuit.net_ids().map(|n| (n, report.delay_noise(n))).filter(|&(_, d)| d > 0.0).collect();
    victims.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite noise"));
    println!("worst victims:");
    for (net, dn) in victims.iter().take(10) {
        println!("  {:>12}  +{dn:7.1} ps", circuit.net(*net).name());
    }
    let path = critical_path(&circuit, report.noisy_timing());
    println!(
        "noisy critical path: {} nets ending at {}",
        path.len(),
        circuit.net(path.endpoint()).name()
    );
    Ok(())
}

/// Optional numeric flag: absent stays `None`, a bad value is an error.
pub(crate) fn opt_num<T: std::str::FromStr>(opts: &Opts, name: &str) -> Result<Option<T>, String> {
    match opts.flag(name) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| format!("invalid value for --{name}: `{v}`")),
    }
}

/// Builds a [`TopKConfig`] carrying the enumeration budget flags and the
/// worker-thread override (`--threads 0`, the default, resolves to the
/// host's available parallelism).
fn budget_config(opts: &Opts) -> Result<TopKConfig, String> {
    Ok(TopKConfig {
        threads: opt_num(opts, "threads")?.unwrap_or(0),
        victim_candidate_budget: opt_num(opts, "victim-budget")?,
        global_candidate_budget: opt_num(opts, "global-budget")?,
        deadline: opt_num::<f64>(opts, "deadline-ms")?
            .map(|ms| std::time::Duration::from_secs_f64(ms.max(0.0) / 1e3)),
        ..TopKConfig::default()
    })
}

/// Surfaces the work-stealing scheduler's counters — including the
/// *resolved* worker count, so `--threads 0` reports the host parallelism
/// it actually ran with instead of echoing the configured zero.
fn report_scheduler(config: &TopKConfig, result: &TopKResult) {
    let s = result.scheduler_stats();
    if s.tasks() == 0 {
        return;
    }
    println!(
        "scheduler: {} worker(s) (resolved from --threads {}), {} task(s), {} steal(s), \
         longest task {:.0}% of busy time",
        s.threads(),
        config.threads,
        s.tasks(),
        s.steals(),
        s.tail_task_share() * 100.0
    );
}

/// Surfaces fault quarantines and budget degradation on stdout so a
/// curtailed or partially failed run is never mistaken for an exact one.
fn report_resilience(circuit: &Circuit, result: &TopKResult) {
    for f in result.faults().iter() {
        println!(
            "  quarantined victim {} ({} phase): {}",
            circuit.net(f.victim()).name(),
            f.phase(),
            f.cause()
        );
    }
    if result.is_degraded() {
        let s = result.sweep_stats();
        println!(
            "NOTE: result is a sound lower bound (degraded): {} victim(s) truncated, \
             {} skipped, {} quarantined",
            s.truncated_victims, s.skipped_victims, s.quarantined_victims
        );
    }
}

fn cmd_topk(opts: &Opts) -> Result<(), String> {
    let circuit = load_circuit(opts)?;
    let k: usize = opts.num("k", 10)?;
    let mode = match opts.flag("mode") {
        Some("add") | None => Mode::Addition,
        Some("del") | Some("elim") => Mode::Elimination,
        Some(other) => return Err(format!("unknown --mode `{other}` (use add|del)")),
    };
    let engine = TopKAnalysis::new(&circuit, budget_config(opts)?);
    let peel_step = (k / 5).max(1);
    let result = match (mode, opts.has("peel")) {
        (Mode::Addition, _) => engine.addition_set(k),
        (Mode::Elimination, false) => engine.elimination_set(k),
        (Mode::Elimination, true) => engine.elimination_set_peeled(k, peel_step),
    }
    .map_err(|e| e.to_string())?;
    // --audit with --peel certifies the incremental peel rounds against
    // the from-scratch reference implementation.
    if mode == Mode::Elimination && opts.has("peel") && opts.has("audit") {
        let scratch =
            engine.elimination_set_peeled_scratch(k, peel_step).map_err(|e| e.to_string())?;
        let same = result.couplings() == scratch.couplings()
            && result.delay_before().to_bits() == scratch.delay_before().to_bits()
            && result.delay_after().to_bits() == scratch.delay_after().to_bits()
            && result.predicted_delay().to_bits() == scratch.predicted_delay().to_bits();
        if !same {
            return Err("audit failed: incremental peel diverged from from-scratch".into());
        }
        println!("audit: incremental peel == from-scratch (bit-identical)");
    }

    println!("top-{k} {} set on {}:", mode.name(), circuit.stats());
    for &cc in result.couplings() {
        let c = circuit.coupling(cc);
        println!(
            "  {cc}: {} -- {} ({:.2} fF)",
            circuit.net(c.a()).name(),
            circuit.net(c.b()).name(),
            c.cap()
        );
    }
    println!(
        "delay {:.3} -> {:.3} ns ({:+.1} ps) in {:.2?}",
        result.delay_before() / 1000.0,
        result.delay_after() / 1000.0,
        result.delay_after() - result.delay_before(),
        result.runtime()
    );
    report_scheduler(engine.config(), &result);
    report_resilience(&circuit, &result);
    Ok(())
}

/// The designer's fix loop, one command: run the full analysis, pretend
/// the reported worst set has been fixed (shielded / rerouted, i.e. its
/// couplings masked out), and re-verify **incrementally** through a
/// [`WhatIfSession`] — only the dirty fanout cone of the touched couplings
/// is re-swept, the rest of the circuit is served from the session cache.
fn cmd_whatif(opts: &Opts) -> Result<(), String> {
    let circuit = load_circuit(opts)?;
    let k: usize = opts.num("k", 10)?;
    let mode = match opts.flag("mode") {
        Some("del") | Some("elim") | None => Mode::Elimination,
        Some("add") => Mode::Addition,
        Some(other) => return Err(format!("unknown --mode `{other}` (use add|del)")),
    };
    let damping = match opts.flag("damping") {
        Some("semantic") | None => Damping::Semantic,
        Some("structural") => Damping::Structural,
        Some(other) => {
            return Err(format!("unknown --damping `{other}` (use structural|semantic)"))
        }
    };
    let engine = TopKAnalysis::new(
        &circuit,
        TopKConfig {
            damping,
            threads: opt_num(opts, "threads")?.unwrap_or(0),
            ..TopKConfig::default()
        },
    );

    // --history inspects or replays the generation chain instead of
    // running the fix loop: bare, it lists every committed record plus
    // any classified integrity fault (the same classes the L07x lint
    // rules report); with GEN it rebuilds that exact generation and
    // prints its fingerprint, bit-identical to a session that had
    // stopped there.
    if let Some(gen) = opts.flag("history") {
        let path = opts
            .flag("load")
            .ok_or_else(|| "--history needs --load FILE (the chain to inspect)".to_owned())?;
        let bytes = fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        return if gen == "true" {
            whatif_history_list(&engine, path, &bytes)
        } else {
            let generation: u64 =
                gen.parse().map_err(|_| format!("invalid value for --history: `{gen}`"))?;
            whatif_history_at(&engine, path, &bytes, generation)
        };
    }

    // --load resumes from a crash-safe generation chain, replaying the
    // checkpointed base and every delta record to the tip; anything
    // wrong with the bytes (truncation, bit rot, version skew, broken
    // links, different circuit) is reported and the command falls back
    // to a from-scratch sweep. A bad chain can cost the cache, never
    // the answer.
    let full_start = std::time::Instant::now();
    let mut session = match opts.flag("load") {
        Some(path) => {
            let bytes = fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            match WhatIfSession::resume(&engine, &bytes) {
                Ok(s) => {
                    if s.mode() != mode || s.k() != k {
                        eprintln!(
                            "note: `{path}` stores a {} k={} session; \
                             command-line --mode/-k are ignored",
                            s.mode().name(),
                            s.k()
                        );
                    }
                    println!("resumed session from `{path}` ({} bytes)", bytes.len());
                    s
                }
                Err(e) => {
                    // Typed classification: a stale artifact (version
                    // skew, fingerprint mismatch) warrants regenerating
                    // the cache; a corrupt or truncated one points at
                    // storage problems. Same classes the serve daemon
                    // reports after a failed spill-reload.
                    match &e {
                        dna_topk::TopKError::Artifact(a) => {
                            eprintln!("cannot resume from `{path}` [{}]: {a}", a.class());
                        }
                        other => eprintln!("cannot resume from `{path}`: {other}"),
                    }
                    eprintln!("falling back to a from-scratch sweep");
                    WhatIfSession::start(&engine, mode, k).map_err(|e| e.to_string())?
                }
            }
        }
        None => WhatIfSession::start(&engine, mode, k).map_err(|e| e.to_string())?,
    };
    let full_ms = full_start.elapsed().as_secs_f64() * 1e3;
    let (mode, k) = (session.mode(), session.k());
    let base = session.result().clone();

    // --batch evaluates a menu of independent scenarios against the
    // session snapshot instead of committing the default fix loop; the
    // snapshot itself stays untouched, so --save here never grows the
    // chain (a session resumed from the same file commits as Unchanged).
    if let Some(batch_path) = opts.flag("batch") {
        if let Some(path) = opts.flag("save") {
            save_session(&mut session, path, opts.has("compact"))?;
        }
        return whatif_batch(&circuit, &engine, &session, batch_path, opts);
    }

    println!("top-{k} {} set on {}:", mode.name(), circuit.stats());
    for &cc in base.couplings() {
        let c = circuit.coupling(cc);
        println!(
            "  {cc}: {} -- {} ({:.2} fF)",
            circuit.net(c.a()).name(),
            circuit.net(c.b()).name(),
            c.cap()
        );
    }

    let fix: Vec<_> = base.couplings().to_vec();
    let delta = MaskDelta::remove(&fix);
    let pre_mask = session.mask().clone();
    let inc_start = std::time::Instant::now();
    let outcome = session.apply(&delta).map_err(|e| e.to_string())?;
    let inc_ms = inc_start.elapsed().as_secs_f64() * 1e3;

    // --save commits the *touched* session to its chain: resumed from
    // the same file, the fix just applied becomes one appended delta
    // record — O(dirty victims) bytes, not a full rewrite; a fresh
    // session writes a full checkpoint; --compact forces the checkpoint
    // arm, folding the chain back into a single record.
    if let Some(path) = opts.flag("save") {
        save_session(&mut session, path, opts.has("compact"))?;
    }

    let fixed = outcome.result();
    println!(
        "what-if fix of {} coupling(s): delay {:.3} -> {:.3} ns ({:+.1} ps recovered)",
        fix.len(),
        base.delay_after() / 1000.0,
        fixed.delay_after() / 1000.0,
        base.delay_after() - fixed.delay_after(),
    );
    println!(
        "incremental re-verify: {}/{} victims re-swept ({} of {} structurally dirty \
         proven clean, {} served from cache) in {inc_ms:.1} ms (initial full run took \
         {full_ms:.1} ms)",
        outcome.recomputed_victims(),
        outcome.total_victims(),
        outcome.proven_clean_victims(),
        outcome.structural_dirty_victims(),
        outcome.cached_victims(),
    );
    if opts.has("fingerprint") {
        println!("  fingerprint: {:016x}", fixed.identity_fingerprint());
    }
    report_scheduler(engine.config(), fixed);
    report_resilience(&circuit, fixed);

    // --audit cross-checks the incremental answer against a from-scratch
    // run under the same mask, the dirty set and its clean certificates
    // against the L035/L05x rules, and spot-checks a sample of
    // proven-clean victims against the from-scratch per-victim results.
    if opts.has("audit") {
        let scratch = engine.run_with_mask(mode, k, session.mask()).map_err(|e| e.to_string())?;
        let same = fixed.couplings() == scratch.couplings()
            && fixed.sink() == scratch.sink()
            && fixed.delay_before().to_bits() == scratch.delay_before().to_bits()
            && fixed.delay_after().to_bits() == scratch.delay_after().to_bits()
            && fixed.predicted_delay().to_bits() == scratch.predicted_delay().to_bits();
        if !same {
            return Err("audit failed: incremental result diverged from from-scratch".into());
        }
        let diags = if outcome.certificates().is_empty() {
            lint_dirty_closure(&circuit, &pre_mask, session.mask(), outcome.dirty_flags())
        } else {
            let witness = engine
                .derive_clean_witness(mode, &pre_mask, session.mask())
                .map_err(|e| e.to_string())?;
            lint_dirty_closure_certified(
                &circuit,
                &pre_mask,
                session.mask(),
                outcome.dirty_flags(),
                outcome.certificates(),
                &witness,
            )
        };
        if diags.has_errors() {
            return Err(format!("audit failed: dirty set incoherent\n{}", diags.render_text()));
        }
        let checked = session.audit_clean_victims(&outcome, 8).map_err(|e| e.to_string())?;
        // Scheduler determinism (L060): replay the work-stealing sweep on
        // the serial reference schedule and compare every result slot and
        // budget share.
        let sched = engine.sched_audit(mode, k).map_err(|e| e.to_string())?;
        let sched_diags = lint_sched_replay(&sched);
        if sched_diags.has_errors() {
            return Err(format!(
                "audit failed: scheduler replay diverged\n{}",
                sched_diags.render_text()
            ));
        }
        println!(
            "audit: incremental == from-scratch (bit-identical), dirty closure coherent, \
             {} certificate(s) verified, {checked} proven-clean victim(s) spot-checked, \
             scheduler replay clean ({} slot(s))",
            outcome.certificates().len(),
            sched.checked_victims,
        );
    }
    Ok(())
}

/// Commits the session to the chain file at `path` — delta append when
/// the session was resumed from that same chain and touched, full
/// checkpoint otherwise (or when `--compact` forces it) — and logs what
/// was physically written either way.
fn save_session(
    session: &mut WhatIfSession<'_, '_>,
    path: &str,
    compact: bool,
) -> Result<(), String> {
    let commit = CommitOptions { force_checkpoint: compact, ..CommitOptions::default() };
    let report = commit_chain(session, std::path::Path::new(path), &commit)
        .map_err(|e| format!("cannot save session to `{path}`: {e}"))?;
    match report.kind {
        SaveKind::Unchanged => eprintln!(
            "session unchanged since resume; kept {path} as is ({} bytes)",
            report.file_bytes
        ),
        SaveKind::Checkpoint => eprintln!(
            "saved checkpoint to {path} (generation {}, {} bytes)",
            report.generation, report.bytes_written
        ),
        SaveKind::Delta(n) => eprintln!(
            "appended {n} delta record(s) to {path} (generation {}, {} bytes written, \
             chain now {} bytes)",
            report.generation, report.bytes_written, report.file_bytes
        ),
    }
    Ok(())
}

/// One-line rendering of a typed chain-integrity defect.
fn describe_fault(fault: &ChainFault) -> String {
    match fault {
        ChainFault::OutOfOrder { generation, what } => {
            format!("records out of order at generation {generation}: {what}")
        }
        ChainFault::LinkBroken { generation } => {
            format!("broken predecessor link at generation {generation}")
        }
        ChainFault::Corrupt { error } => format!("corrupt record: {error}"),
        ChainFault::MaskDivergence { generation } => {
            format!("replayed mask diverges from its recorded digest at generation {generation}")
        }
        ChainFault::TornTail { bytes } => {
            format!("torn tail: {bytes} uncommitted byte(s) past the last record")
        }
        ChainFault::ReplayRejected { error } => format!("replay rejected: {error}"),
    }
}

/// The bare `--history` listing: every committed record of the chain,
/// the replayable generation span, and any classified integrity fault.
/// A chain with faults lists what it can and then fails, so scripting
/// `--history` doubles as an integrity check.
fn whatif_history_list(engine: &TopKAnalysis<'_>, path: &str, bytes: &[u8]) -> Result<(), String> {
    let summary = chain_summary_checked(engine, bytes)
        .map_err(|e| format!("cannot read chain `{path}` [{}]: {e}", e.class()))?;
    println!(
        "chain `{path}`: {} committed record(s), {} bytes",
        summary.records.len(),
        bytes.len()
    );
    for r in &summary.records {
        println!(
            "  generation {:>4}  {:<10}  {:>9} payload byte(s) at offset {}",
            r.generation,
            match r.kind {
                RecordKind::Checkpoint => "checkpoint",
                RecordKind::Delta => "delta",
            },
            r.payload_bytes,
            r.offset,
        );
    }
    match (summary.base_generation(), summary.tip_generation()) {
        (Some(base), Some(tip)) => println!("replayable generations: {base}..={tip}"),
        _ => println!("chain holds no committed records"),
    }
    for fault in &summary.faults {
        println!("fault: {}", describe_fault(fault));
    }
    if summary.faults.is_empty() {
        Ok(())
    } else {
        Err(format!("chain `{path}` has {} integrity fault(s)", summary.faults.len()))
    }
}

/// `--history GEN`: rebuilds the session exactly as it was at
/// `generation` and prints that point's result fingerprint — bit-exact
/// replay is what makes the chain an audit substrate, so the digest
/// printed here must equal the one the live run printed back then.
fn whatif_history_at(
    engine: &TopKAnalysis<'_>,
    path: &str,
    bytes: &[u8],
    generation: u64,
) -> Result<(), String> {
    let session = WhatIfSession::resume_at(engine, bytes, generation)
        .map_err(|e| format!("cannot replay `{path}` at generation {generation}: {e}"))?;
    let r = session.result();
    println!(
        "generation {generation} of `{path}`: top-{} {} set, delay {:.3} -> {:.3} ns",
        session.k(),
        session.mode().name(),
        r.delay_before() / 1000.0,
        r.delay_after() / 1000.0,
    );
    println!("  fingerprint: {:016x}", r.identity_fingerprint());
    Ok(())
}

/// Parses a batch scenario file: one scenario per non-empty line, tokens
/// `-ID` (disable coupling ID) and `+ID` (re-enable it), `#` to end of
/// line is a comment.
fn parse_batch_file(text: &str, circuit: &Circuit) -> Result<WhatIfBatch, String> {
    let mut batch = WhatIfBatch::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut removed: Vec<CouplingId> = Vec::new();
        let mut added: Vec<CouplingId> = Vec::new();
        for tok in line.split_whitespace() {
            let (sign, rest) = tok.split_at(1);
            let idx: u32 = rest
                .parse()
                .map_err(|_| format!("line {}: expected -ID or +ID, got `{tok}`", lineno + 1))?;
            if idx as usize >= circuit.num_couplings() {
                return Err(format!(
                    "line {}: coupling {idx} out of range (circuit has {})",
                    lineno + 1,
                    circuit.num_couplings()
                ));
            }
            match sign {
                "-" => removed.push(CouplingId::new(idx)),
                "+" => added.push(CouplingId::new(idx)),
                _ => return Err(format!("line {}: expected -ID or +ID, got `{tok}`", lineno + 1)),
            }
        }
        batch.push(MaskDelta::new(&removed, &added));
    }
    if batch.is_empty() {
        return Err("batch file holds no scenarios".into());
    }
    Ok(batch)
}

/// The `whatif --batch` path: evaluate every scenario of the file against
/// the session snapshot through one shared batch run, and (with --audit)
/// cross-check each scenario against a from-scratch run, its dirty set
/// against L035, and order independence against L043.
fn whatif_batch(
    circuit: &Circuit,
    engine: &TopKAnalysis<'_>,
    session: &WhatIfSession<'_, '_>,
    batch_path: &str,
    opts: &Opts,
) -> Result<(), String> {
    let text =
        fs::read_to_string(batch_path).map_err(|e| format!("cannot read `{batch_path}`: {e}"))?;
    let batch = parse_batch_file(&text, circuit)?;
    let (mode, k) = (session.mode(), session.k());
    let base_delay = session.result().delay_after();

    let start = std::time::Instant::now();
    let out = session.apply_batch(&batch).map_err(|e| e.to_string())?;
    let batch_ms = start.elapsed().as_secs_f64() * 1e3;

    println!(
        "batch what-if: {} scenario(s) ({} distinct) on top-{k} {} session, {batch_ms:.1} ms",
        out.stats().scenarios(),
        out.stats().distinct_scenarios(),
        mode.name()
    );
    for (i, sc) in out.scenarios().iter().enumerate() {
        let r = sc.result();
        println!(
            "  #{:<3} {:>2} flipped  {:>5}/{} re-swept ({} proven clean)  delay {:.3} ns \
             ({:+.1} ps vs session)",
            i,
            sc.changed_couplings().len(),
            sc.recomputed_victims(),
            sc.total_victims(),
            sc.proven_clean_victims(),
            r.delay_after() / 1000.0,
            r.delay_after() - base_delay,
        );
        // --fingerprint prints the identity digest per scenario so a
        // daemon response (which carries the same digest) can be
        // bit-compared against this local replay from a shell.
        if opts.has("fingerprint") {
            println!("  fingerprint #{i}: {:016x}", r.identity_fingerprint());
        }
    }
    println!(
        "closure sharing: {} trie frame(s) built, {} reused; {} dirty victim(s) total \
         ({} under mask-oblivious adjacency, {} proven clean by corridor bounds)",
        out.stats().closure_frames_built(),
        out.stats().closure_frames_shared(),
        out.stats().dirty_victims(),
        out.stats().unmasked_dirty_victims(),
        out.stats().proven_clean_victims(),
    );
    let sched = *out.stats().sched();
    if sched.tasks() > 0 {
        println!(
            "scheduler: {} worker(s), {} (scenario, victim) task(s), {} steal(s), \
             longest task {:.0}% of busy time",
            sched.threads(),
            sched.tasks(),
            sched.steals(),
            sched.tail_task_share() * 100.0
        );
    }

    if opts.has("audit") {
        // Per-scenario: bit-identity against from-scratch, dirty-set
        // coherence against the mask-aware L035 rule.
        for (i, (delta, sc)) in batch.deltas().iter().zip(out.scenarios()).enumerate() {
            let mask = session.mask().clone().without(delta.removed()).with(delta.added());
            let scratch = engine.run_with_mask(mode, k, &mask).map_err(|e| e.to_string())?;
            let r = sc.result();
            let same = r.couplings() == scratch.couplings()
                && r.sink() == scratch.sink()
                && r.delay_before().to_bits() == scratch.delay_before().to_bits()
                && r.delay_after().to_bits() == scratch.delay_after().to_bits()
                && r.predicted_delay().to_bits() == scratch.predicted_delay().to_bits();
            if !same {
                return Err(format!("audit failed: scenario {i} diverged from from-scratch"));
            }
            let diags = if sc.certificates().is_empty() {
                lint_dirty_closure(circuit, session.mask(), &mask, sc.dirty_flags())
            } else {
                let witness = engine
                    .derive_clean_witness(mode, session.mask(), &mask)
                    .map_err(|e| e.to_string())?;
                lint_dirty_closure_certified(
                    circuit,
                    session.mask(),
                    &mask,
                    sc.dirty_flags(),
                    sc.certificates(),
                    &witness,
                )
            };
            if diags.has_errors() {
                return Err(format!(
                    "audit failed: scenario {i} dirty set incoherent\n{}",
                    diags.render_text()
                ));
            }
        }
        // Order independence (L043): re-evaluate the scenarios reversed
        // and compare each result to its forward-order twin.
        let reversed = WhatIfBatch::from_deltas(batch.deltas().iter().rev().cloned().collect());
        let rev_out = session.apply_batch(&reversed).map_err(|e| e.to_string())?;
        let forward: Vec<TopKResult> =
            out.scenarios().iter().map(|sc| sc.result().clone()).collect();
        let mut aligned: Vec<TopKResult> =
            rev_out.scenarios().iter().map(|sc| sc.result().clone()).collect();
        aligned.reverse();
        let diags = lint_batch_order(&forward, &aligned);
        if diags.has_errors() {
            return Err(format!("audit failed: batch is order-dependent\n{}", diags.render_text()));
        }
        let certs: usize = out.scenarios().iter().map(|sc| sc.certificates().len()).sum();
        println!(
            "audit: all {} scenario(s) == from-scratch (bit-identical), dirty closures \
             coherent, {certs} certificate(s) verified, order-independent",
            out.stats().scenarios()
        );
    }
    Ok(())
}

fn cmd_paths(opts: &Opts) -> Result<(), String> {
    let circuit = load_circuit(opts)?;
    let k: usize = opts.num("k", 5)?;
    let model = LinearDelayModel::new();
    let cfg = StaConfig::default();
    let timing = TimingReport::run(&circuit, &model, &cfg).map_err(|e| e.to_string())?;
    println!("circuit delay: {:.3} ns", timing.circuit_delay() / 1000.0);
    for (i, p) in top_k_paths(&circuit, &model, &cfg, k).iter().enumerate() {
        let names: Vec<&str> = p.nets().iter().map(|&n| circuit.net(n).name()).collect();
        println!("#{:<2} {:.3} ns  {}", i + 1, p.arrival() / 1000.0, names.join(" -> "));
    }
    Ok(())
}

fn cmd_glitch(opts: &Opts) -> Result<(), String> {
    let circuit = load_circuit(opts)?;
    let margin: f64 = opts.num("margin", 0.4)?;
    let timing = TimingReport::run(&circuit, &LinearDelayModel::new(), &StaConfig::default())
        .map_err(|e| e.to_string())?;
    let reports = glitch::check(
        &circuit,
        &NoiseConfig::default(),
        timing.timings(),
        &CouplingMask::all(&circuit),
        glitch::NoiseMargin { low: margin, high: margin },
    );
    let violations = reports.iter().filter(|r| r.violated()).count();
    println!(
        "glitch check (margin {margin:.2}): {} nets checked, {} violations",
        reports.len(),
        violations
    );
    for r in reports.iter().take(10) {
        println!(
            "  {:>12}  peak {:.3}  slack {:+.3}{}",
            circuit.net(r.net).name(),
            r.peak,
            r.slack(),
            if r.violated() { "  VIOLATED" } else { "" }
        );
    }
    Ok(())
}

fn cmd_lint(opts: &Opts) -> Result<(), String> {
    let circuit = load_circuit(opts)?;

    let mut diags = lint_circuit(&circuit);
    diags.merge(lint_config(&TopKConfig::default()));

    // The static timing windows every downstream analysis consumes.
    match TimingReport::run(&circuit, &LinearDelayModel::new(), &StaConfig::default()) {
        Ok(timing) => diags.merge(lint_timing(&circuit, timing.timings())),
        Err(e) => return Err(format!("cannot derive timing windows: {e}")),
    }

    // --deep additionally runs a small top-k analysis end to end and
    // verifies the engine's answer, then exercises an incremental what-if
    // session and checks its dirty-set bookkeeping against the L035
    // session-cache-coherence rule and every emitted clean certificate
    // against the L05x rules (each certificate is re-derived from scratch
    // and compared bitwise, so an unsound or stale certificate — e.g. one
    // injected through the `faultsim` prover hook — fails the lint).
    if opts.has("deep") {
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        let result = engine.addition_set(2).map_err(|e| e.to_string())?;
        diags.merge(lint_result(&circuit, &result, &CouplingSet::new()));

        let mut session = WhatIfSession::start(&engine, Mode::Elimination, 2)
            .map_err(|e| format!("deep lint: cannot start what-if session: {e}"))?;
        let worst: Vec<_> = session.result().couplings().to_vec();
        let pre_mask = session.mask().clone();
        let outcome = session
            .apply(&MaskDelta::remove(&worst))
            .map_err(|e| format!("deep lint: what-if apply failed: {e}"))?;
        let witness = engine
            .derive_clean_witness(Mode::Elimination, &pre_mask, session.mask())
            .map_err(|e| format!("deep lint: cannot re-derive clean witness: {e}"))?;
        diags.merge(lint_dirty_closure_certified(
            &circuit,
            &pre_mask,
            session.mask(),
            outcome.dirty_flags(),
            outcome.certificates(),
            &witness,
        ));

        // Batch scenario results must not depend on submission order
        // (L043): evaluate a small scenario menu forward and reversed and
        // compare each pair.
        let ids: Vec<CouplingId> = circuit.coupling_ids().take(2).collect();
        if !ids.is_empty() {
            let mut deltas: Vec<MaskDelta> = ids.iter().map(|&c| MaskDelta::remove(&[c])).collect();
            deltas.push(MaskDelta::remove(&ids));
            let forward = session
                .apply_batch(&WhatIfBatch::from_deltas(deltas.clone()))
                .map_err(|e| format!("deep lint: batch what-if failed: {e}"))?;
            deltas.reverse();
            let reversed = session
                .apply_batch(&WhatIfBatch::from_deltas(deltas))
                .map_err(|e| format!("deep lint: reversed batch what-if failed: {e}"))?;
            let fwd: Vec<TopKResult> =
                forward.scenarios().iter().map(|sc| sc.result().clone()).collect();
            let mut rev: Vec<TopKResult> =
                reversed.scenarios().iter().map(|sc| sc.result().clone()).collect();
            rev.reverse();
            diags.merge(lint_batch_order(&fwd, &rev));
        }

        // Scheduler determinism (L060): replay the work-stealing sweep
        // serially and compare every published result slot and budget
        // share against the parallel run.
        let audit = engine.sched_audit(Mode::Addition, 2).map_err(|e| e.to_string())?;
        diags.merge(lint_sched_replay(&audit));

        // Chain integrity (L07x): round-trip the touched session through
        // a scratch generation chain — checkpoint base plus one appended
        // delta — and verify the file's record order, links and replay
        // against the chain rules.
        let dir = std::env::temp_dir().join("dna_lint_deep_chain");
        fs::create_dir_all(&dir).map_err(|e| format!("deep lint: cannot create {dir:?}: {e}"))?;
        let chain = dir.join(format!("lint-{}.dnawifa", std::process::id()));
        commit_chain(&mut session, &chain, &CommitOptions::default())
            .map_err(|e| format!("deep lint: cannot commit scratch chain: {e}"))?;
        session
            .apply(&MaskDelta::new(&[], &worst))
            .map_err(|e| format!("deep lint: what-if restore failed: {e}"))?;
        commit_chain(&mut session, &chain, &CommitOptions::default())
            .map_err(|e| format!("deep lint: cannot append to scratch chain: {e}"))?;
        let bytes =
            fs::read(&chain).map_err(|e| format!("deep lint: cannot read scratch chain: {e}"))?;
        let _ = fs::remove_file(&chain);
        let summary = chain_summary_checked(&engine, &bytes)
            .map_err(|e| format!("deep lint: scratch chain unreadable: {e}"))?;
        diags.merge(lint_chain(&summary));
    }

    diags.sort();
    render_lint(&diags, opts.has("json"));
    if diags.has_errors() {
        Err(format!("lint failed with {} error(s)", diags.error_count()))
    } else {
        Ok(())
    }
}

fn cmd_bench(opts: &Opts) -> Result<(), String> {
    // Audit mode: validate an existing report (used by the CI smoke run).
    if let Some(path) = opts.flag("check") {
        let text = fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let notes = topk_bench::validate_json_notes(&text).map_err(|e| format!("`{path}`: {e}"))?;
        // A skipped gate passes validation but is never silent: every
        // skip is printed with the reason the report recorded.
        for note in &notes {
            println!("gate: {note}");
        }
        println!(
            "{path}: well-formed {} report ({} gate(s) skipped)",
            topk_bench::SCHEMA,
            notes.len()
        );
        return Ok(());
    }

    let mut spec = topk_bench::BenchSpec::default();
    if opts.has("quick") {
        spec.circuits = vec!["i1".into()];
        spec.k = spec.k.min(3);
    }
    if let Some(list) = opts.flag("circuits") {
        spec.circuits = list.split(',').map(str::to_owned).collect();
    }
    spec.k = opts.num("k", spec.k)?;
    spec.samples = opts.num("samples", spec.samples)?;
    spec.seed = opts.num("seed", spec.seed)?;

    let report = topk_bench::run(&spec)?;
    print!("{}", report.render_table());
    if opts.has("json") {
        let path = opts.flag("out").unwrap_or("BENCH_topk.json");
        fs::write(path, report.to_json()).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote {path} (host_threads = {})", report.host_threads);
    }
    if report.entries.iter().any(|e| !e.identical_to_serial) {
        return Err("a parallel run diverged from its serial reference".into());
    }
    if report.batch.iter().any(|e| !e.identical_to_sequential) {
        return Err("a batch scenario diverged from its sequential reference".into());
    }
    if report.peeled.iter().any(|e| !e.identical_to_scratch) {
        return Err("an incremental peel diverged from its from-scratch reference".into());
    }
    if report.versioned_store.iter().any(|e| !e.identical_to_full) {
        return Err("a chain-tip replay diverged from its live session".into());
    }
    Ok(())
}

fn render_lint(diags: &Diagnostics, json: bool) {
    if json {
        println!("{}", diags.render_json());
    } else {
        println!("{}", diags.render_text());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The `dna_topk::faultsim` registry is process-global, so the one
    /// test that arms it holds the write half of this lock while every
    /// other test that drives a semantic what-if refinement (whatif,
    /// lint --deep) holds the read half — they stay parallel among
    /// themselves but never overlap an armed injection.
    static FAULTSIM: std::sync::RwLock<()> = std::sync::RwLock::new(());

    fn faultsim_read() -> std::sync::RwLockReadGuard<'static, ()> {
        FAULTSIM.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn argv(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn unknown_command_errors() {
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn help_and_empty_succeed() {
        assert!(dispatch(&argv(&["help"])).is_ok());
        assert!(dispatch(&argv(&[])).is_ok());
    }

    #[test]
    fn generate_analyze_topk_round_trip() {
        let dir = std::env::temp_dir().join("dna_cli_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckt");
        let path_s = path.to_str().unwrap().to_owned();

        dispatch(&argv(&[
            "generate",
            "--gates",
            "15",
            "--couplings",
            "12",
            "--seed",
            "3",
            "--o",
            &path_s,
        ]))
        .unwrap();
        assert!(path.exists());

        dispatch(&argv(&["analyze", &path_s])).unwrap();
        dispatch(&argv(&["topk", &path_s, "--mode", "add", "--k", "2"])).unwrap();
        dispatch(&argv(&["topk", &path_s, "--mode", "del", "--k", "2", "--peel"])).unwrap();
        dispatch(&argv(&["paths", &path_s, "--k", "3"])).unwrap();
        dispatch(&argv(&["glitch", &path_s])).unwrap();
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn whatif_runs_and_audits() {
        let _g = faultsim_read();
        let dir = std::env::temp_dir().join("dna_cli_test_whatif");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckt");
        let path_s = path.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "18",
            "--couplings",
            "14",
            "--seed",
            "7",
            "--o",
            &path_s,
        ]))
        .unwrap();
        dispatch(&argv(&["whatif", &path_s, "--k", "2", "--audit"])).unwrap();
        dispatch(&argv(&["whatif", &path_s, "--mode", "add", "--k", "2", "--audit"])).unwrap();
        // Structural damping skips the prover but must pass the same audit.
        dispatch(&argv(&["whatif", &path_s, "--k", "2", "--damping", "structural", "--audit"]))
            .unwrap();
        let e = dispatch(&argv(&["whatif", &path_s, "--mode", "sideways"])).unwrap_err();
        assert!(e.contains("unknown --mode"));
        let e = dispatch(&argv(&["whatif", &path_s, "--damping", "cosmetic"])).unwrap_err();
        assert!(e.contains("unknown --damping"));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn deep_lint_catches_injected_unsound_certificate() {
        use dna_topk::faultsim;
        let _g = FAULTSIM.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        struct Disarm;
        impl Drop for Disarm {
            fn drop(&mut self) {
                faultsim::disarm_all();
            }
        }
        let _d = Disarm;

        let dir = std::env::temp_dir().join("dna_cli_test_faultsim");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckt");
        let path_s = path.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "20",
            "--couplings",
            "15",
            "--seed",
            "11",
            "--o",
            &path_s,
        ]))
        .unwrap();

        // Replay the session deep lint runs to find a victim it re-sweeps
        // even after corridor refinement.
        let text = fs::read_to_string(&path).unwrap();
        let circuit = format::parse(&text).unwrap();
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        let mut session = WhatIfSession::start(&engine, Mode::Elimination, 2).unwrap();
        let worst: Vec<_> = session.result().couplings().to_vec();
        let outcome = session.apply(&MaskDelta::remove(&worst)).unwrap();
        let victim = outcome
            .dirty_flags()
            .iter()
            .position(|&d| d)
            .expect("removing the worst set must leave at least one dirty victim");

        // With the prover hook armed, the session fabricates an unsound
        // clean certificate for that victim; the L05x re-derivation in
        // `lint --deep` must refuse it.
        faultsim::arm_force_clean_victim(victim);
        let e = dispatch(&argv(&["lint", &path_s, "--deep"])).unwrap_err();
        assert!(e.contains("lint failed"), "{e}");
        faultsim::disarm_all();

        // Disarmed, the same command is clean again.
        dispatch(&argv(&["lint", &path_s, "--deep"])).unwrap();
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lint_passes_on_generated_circuit() {
        let _g = faultsim_read();
        let dir = std::env::temp_dir().join("dna_cli_test_lint");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckt");
        let path_s = path.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "20",
            "--couplings",
            "15",
            "--seed",
            "11",
            "--o",
            &path_s,
        ]))
        .unwrap();
        dispatch(&argv(&["lint", &path_s])).unwrap();
        dispatch(&argv(&["lint", &path_s, "--json", "--deep"])).unwrap();
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn topk_budget_flags_degrade_soundly() {
        let dir = std::env::temp_dir().join("dna_cli_test_budget");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckt");
        let path_s = path.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "16",
            "--couplings",
            "12",
            "--seed",
            "5",
            "--o",
            &path_s,
        ]))
        .unwrap();
        // A brutal budget still succeeds: the result is degraded, not an error.
        dispatch(&argv(&["topk", &path_s, "--mode", "del", "--k", "3", "--victim-budget", "1"]))
            .unwrap();
        dispatch(&argv(&["topk", &path_s, "--mode", "add", "--k", "2", "--global-budget", "0"]))
            .unwrap();
        dispatch(&argv(&["topk", &path_s, "--k", "2", "--deadline-ms", "0"])).unwrap();
        let e = dispatch(&argv(&["topk", &path_s, "--victim-budget", "lots"])).unwrap_err();
        assert!(e.contains("--victim-budget"));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn whatif_save_load_round_trip_and_corrupt_fallback() {
        let _g = faultsim_read();
        let dir = std::env::temp_dir().join("dna_cli_test_artifact");
        fs::create_dir_all(&dir).unwrap();
        let ckt = dir.join("t.ckt");
        let ckt_s = ckt.to_str().unwrap().to_owned();
        let art = dir.join("t.dna");
        let art_s = art.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "18",
            "--couplings",
            "14",
            "--seed",
            "9",
            "--o",
            &ckt_s,
        ]))
        .unwrap();

        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--save", &art_s])).unwrap();
        assert!(art.exists());
        // Clean artifact resumes and still passes the bit-identity audit.
        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--load", &art_s, "--audit"])).unwrap();

        // Truncate the artifact: the loader must detect it and the command
        // must still succeed via the from-scratch fallback.
        let bytes = fs::read(&art).unwrap();
        fs::write(&art, &bytes[..bytes.len() / 2]).unwrap();
        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--load", &art_s, "--audit"])).unwrap();

        // Flip one payload byte: CRC mismatch, same graceful fallback.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        fs::write(&art, &flipped).unwrap();
        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--load", &art_s, "--audit"])).unwrap();

        fs::remove_file(&ckt).unwrap();
        fs::remove_file(&art).unwrap();
    }

    #[test]
    fn whatif_batch_runs_audits_and_rejects_bad_tokens() {
        let _g = faultsim_read();
        let dir = std::env::temp_dir().join("dna_cli_test_batch");
        fs::create_dir_all(&dir).unwrap();
        let ckt = dir.join("t.ckt");
        let ckt_s = ckt.to_str().unwrap().to_owned();
        let bat = dir.join("t.batch");
        let bat_s = bat.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "18",
            "--couplings",
            "14",
            "--seed",
            "7",
            "--o",
            &ckt_s,
        ]))
        .unwrap();

        fs::write(&bat, "# scenario menu\n-0\n-1 -2\n-0  # duplicate of scenario 1\n+3\n").unwrap();
        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--batch", &bat_s, "--audit"])).unwrap();

        fs::write(&bat, "-0 oops\n").unwrap();
        let e = dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--batch", &bat_s])).unwrap_err();
        assert!(e.contains("expected -ID or +ID"), "{e}");
        fs::write(&bat, "-99999\n").unwrap();
        let e = dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--batch", &bat_s])).unwrap_err();
        assert!(e.contains("out of range"), "{e}");
        fs::write(&bat, "# only comments\n").unwrap();
        let e = dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--batch", &bat_s])).unwrap_err();
        assert!(e.contains("no scenarios"), "{e}");

        fs::remove_file(&ckt).unwrap();
        fs::remove_file(&bat).unwrap();
    }

    #[test]
    fn whatif_save_after_load_appends_a_delta_record() {
        let _g = faultsim_read();
        let dir = std::env::temp_dir().join("dna_cli_test_save_delta");
        fs::create_dir_all(&dir).unwrap();
        let ckt = dir.join("t.ckt");
        let ckt_s = ckt.to_str().unwrap().to_owned();
        let art = dir.join("t.dna");
        let art_s = art.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "16",
            "--couplings",
            "12",
            "--seed",
            "13",
            "--o",
            &ckt_s,
        ]))
        .unwrap();

        // A fresh session writes a full checkpoint.
        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--save", &art_s])).unwrap();
        let checkpoint = fs::read(&art).unwrap();
        let summary = dna_topk::chain_summary(&checkpoint).unwrap();
        assert_eq!(summary.records.len(), 1);
        assert_eq!(summary.records[0].kind, RecordKind::Checkpoint);

        // Resume + fix + save: the touched session appends one delta
        // record onto the chain; the committed prefix is not rewritten.
        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--load", &art_s, "--save", &art_s]))
            .unwrap();
        let grown = fs::read(&art).unwrap();
        assert!(grown.len() > checkpoint.len(), "delta save must grow the chain");
        assert_eq!(
            &grown[..checkpoint.len()],
            &checkpoint[..],
            "delta save must not rewrite the committed prefix"
        );
        let summary = dna_topk::chain_summary(&grown).unwrap();
        assert!(summary.faults.is_empty(), "{:?}", summary.faults);
        let kinds: Vec<RecordKind> = summary.records.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec![RecordKind::Checkpoint, RecordKind::Delta]);

        // The delta tail replays: the next resume lands on the tip and
        // still passes the bit-identity audit.
        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--load", &art_s, "--audit"])).unwrap();

        // --compact folds the chain back into a single checkpoint.
        dispatch(&argv(&[
            "whatif",
            &ckt_s,
            "--k",
            "2",
            "--load",
            &art_s,
            "--save",
            &art_s,
            "--compact",
        ]))
        .unwrap();
        let compacted = fs::read(&art).unwrap();
        let summary = dna_topk::chain_summary(&compacted).unwrap();
        assert_eq!(summary.records.len(), 1);
        assert_eq!(summary.records[0].kind, RecordKind::Checkpoint);

        fs::remove_file(&ckt).unwrap();
        fs::remove_file(&art).unwrap();
    }

    #[test]
    fn whatif_history_lists_and_replays_generations() {
        let _g = faultsim_read();
        let dir = std::env::temp_dir().join("dna_cli_test_history");
        fs::create_dir_all(&dir).unwrap();
        let ckt = dir.join("t.ckt");
        let ckt_s = ckt.to_str().unwrap().to_owned();
        let art = dir.join("t.dna");
        let art_s = art.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "16",
            "--couplings",
            "12",
            "--seed",
            "21",
            "--o",
            &ckt_s,
        ]))
        .unwrap();

        // Grow a two-generation chain: checkpoint, then one delta.
        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--save", &art_s])).unwrap();
        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--load", &art_s, "--save", &art_s]))
            .unwrap();
        let summary = dna_topk::chain_summary(&fs::read(&art).unwrap()).unwrap();
        let base = summary.base_generation().unwrap();
        let tip = summary.tip_generation().unwrap();
        assert!(tip > base, "the chain must span more than one generation");

        // Bare --history lists; --history GEN replays any committed
        // generation, including ones behind the tip.
        dispatch(&argv(&["whatif", &ckt_s, "--load", &art_s, "--history"])).unwrap();
        for generation in [base, tip] {
            dispatch(&argv(&[
                "whatif",
                &ckt_s,
                "--load",
                &art_s,
                "--history",
                &generation.to_string(),
            ]))
            .unwrap();
        }

        // Past the tip is a typed refusal, not a crash or a guess.
        let e = dispatch(&argv(&[
            "whatif",
            &ckt_s,
            "--load",
            &art_s,
            "--history",
            &(tip + 7).to_string(),
        ]))
        .unwrap_err();
        assert!(e.contains("generation"), "{e}");

        // --history without a chain to inspect is an error up front.
        let e = dispatch(&argv(&["whatif", &ckt_s, "--history"])).unwrap_err();
        assert!(e.contains("--history needs --load"), "{e}");

        fs::remove_file(&ckt).unwrap();
        fs::remove_file(&art).unwrap();
    }

    #[test]
    fn missing_file_reports_error() {
        let e = dispatch(&argv(&["analyze", "/nonexistent/x.ckt"])).unwrap_err();
        assert!(e.contains("cannot read"));
    }

    #[test]
    fn bad_mode_reports_error() {
        let dir = std::env::temp_dir().join("dna_cli_test2");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckt");
        let path_s = path.to_str().unwrap().to_owned();
        dispatch(&argv(&["generate", "--gates", "8", "--couplings", "4", "--o", &path_s])).unwrap();
        let e = dispatch(&argv(&["topk", &path_s, "--mode", "sideways"])).unwrap_err();
        assert!(e.contains("unknown --mode"));
        fs::remove_file(&path).unwrap();
    }
}
