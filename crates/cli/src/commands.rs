//! Subcommand implementations.

use std::fs;

use dna_bench::topk_bench;
use dna_lint::{
    lint_circuit, lint_config, lint_dirty_closure, lint_result, lint_timing, Diagnostics,
};
use dna_netlist::generator::{generate, GeneratorConfig};
use dna_netlist::{format, suite, Circuit};
use dna_noise::{glitch, CouplingMask, NoiseAnalysis, NoiseConfig};
use dna_sta::{critical_path, top_k_paths, LinearDelayModel, StaConfig, TimingReport};
use dna_topk::CouplingSet;
use dna_topk::{MaskDelta, Mode, TopKAnalysis, TopKConfig, TopKResult, WhatIfSession};

use crate::opts::Opts;

const USAGE: &str = "\
usage: dna <command> [options]

commands:
  generate  --gates N --couplings N [--seed S] [--bench i1..i10] [-o file]
  analyze   <file.ckt> [--seed S]         iterative noise analysis report
  topk      <file.ckt> --mode add|del -k N [--peel]
            [--victim-budget N] [--global-budget N] [--deadline-ms MS]
                                          budgets degrade soundly: the
                                          result is marked a lower bound
  whatif    <file.ckt> [--mode add|del] [-k N] [--audit]
            [--save FILE] [--load FILE]   fix-loop: run, remove the worst
                                          set, re-verify incrementally;
                                          sessions persist to checksummed
                                          artifacts (corrupt files fall
                                          back to a full sweep)
  paths     <file.ckt> [-k N]             top-k critical paths
  glitch    <file.ckt> [--margin 0.4]     functional noise check
  lint      <file.ckt> [--json] [--deep]  verify IR and analysis invariants
  bench     [--json] [--out FILE] [--circuits i1,i5,i10] [--k N]
            [--samples N] [--seed S] [--quick] [--check FILE]
                                          serial-vs-parallel top-k benchmark
  help                                    this message";

/// Routes the parsed command line to a subcommand.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, bad flags, I/O
/// failures and analysis errors.
pub fn dispatch(args: &[String]) -> Result<(), String> {
    let opts = Opts::parse(args);
    match opts.positional(0) {
        Some("generate") => cmd_generate(&opts),
        Some("analyze") => cmd_analyze(&opts),
        Some("topk") => cmd_topk(&opts),
        Some("whatif") => cmd_whatif(&opts),
        Some("paths") => cmd_paths(&opts),
        Some("glitch") => cmd_glitch(&opts),
        Some("lint") => cmd_lint(&opts),
        Some("bench") => cmd_bench(&opts),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn load_circuit(opts: &Opts) -> Result<Circuit, String> {
    let path = opts.positional(1).ok_or_else(|| "expected a .ckt file argument".to_owned())?;
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    format::parse(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let seed: u64 = opts.num("seed", 42)?;
    let circuit = if let Some(bench) = opts.flag("bench") {
        suite::benchmark(bench, seed).map_err(|e| e.to_string())?
    } else {
        let gates: usize = opts.num("gates", 100)?;
        let couplings: usize = opts.num("couplings", 3 * gates)?;
        generate(&GeneratorConfig::new(gates, couplings).with_seed(seed))
            .map_err(|e| e.to_string())?
    };
    let text = format::write(&circuit);
    match opts.flag("o") {
        Some(path) => {
            fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {} ({})", path, circuit.stats());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_analyze(opts: &Opts) -> Result<(), String> {
    let circuit = load_circuit(opts)?;
    let engine = NoiseAnalysis::new(&circuit, NoiseConfig::default());
    let report = engine.run().map_err(|e| e.to_string())?;
    let quiet = engine.run_with_mask(&CouplingMask::none(&circuit)).map_err(|e| e.to_string())?;

    println!("design: {}", circuit.stats());
    println!(
        "delay: {:.3} ns noisy / {:.3} ns noiseless ({:+.1} ps crosstalk, {} iterations{})",
        report.circuit_delay() / 1000.0,
        quiet.circuit_delay() / 1000.0,
        report.total_delay_noise(),
        report.iterations(),
        if report.converged() { "" } else { ", NOT converged" },
    );

    let mut victims: Vec<_> =
        circuit.net_ids().map(|n| (n, report.delay_noise(n))).filter(|&(_, d)| d > 0.0).collect();
    victims.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite noise"));
    println!("worst victims:");
    for (net, dn) in victims.iter().take(10) {
        println!("  {:>12}  +{dn:7.1} ps", circuit.net(*net).name());
    }
    let path = critical_path(&circuit, report.noisy_timing());
    println!(
        "noisy critical path: {} nets ending at {}",
        path.len(),
        circuit.net(path.endpoint()).name()
    );
    Ok(())
}

/// Optional numeric flag: absent stays `None`, a bad value is an error.
fn opt_num<T: std::str::FromStr>(opts: &Opts, name: &str) -> Result<Option<T>, String> {
    match opts.flag(name) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| format!("invalid value for --{name}: `{v}`")),
    }
}

/// Builds a [`TopKConfig`] carrying the enumeration budget flags.
fn budget_config(opts: &Opts) -> Result<TopKConfig, String> {
    Ok(TopKConfig {
        victim_candidate_budget: opt_num(opts, "victim-budget")?,
        global_candidate_budget: opt_num(opts, "global-budget")?,
        deadline: opt_num::<f64>(opts, "deadline-ms")?
            .map(|ms| std::time::Duration::from_secs_f64(ms.max(0.0) / 1e3)),
        ..TopKConfig::default()
    })
}

/// Surfaces fault quarantines and budget degradation on stdout so a
/// curtailed or partially failed run is never mistaken for an exact one.
fn report_resilience(circuit: &Circuit, result: &TopKResult) {
    for f in result.faults().iter() {
        println!(
            "  quarantined victim {} ({} phase): {}",
            circuit.net(f.victim()).name(),
            f.phase(),
            f.cause()
        );
    }
    if result.is_degraded() {
        let s = result.sweep_stats();
        println!(
            "NOTE: result is a sound lower bound (degraded): {} victim(s) truncated, \
             {} skipped, {} quarantined",
            s.truncated_victims, s.skipped_victims, s.quarantined_victims
        );
    }
}

fn cmd_topk(opts: &Opts) -> Result<(), String> {
    let circuit = load_circuit(opts)?;
    let k: usize = opts.num("k", 10)?;
    let mode = match opts.flag("mode") {
        Some("add") | None => Mode::Addition,
        Some("del") | Some("elim") => Mode::Elimination,
        Some(other) => return Err(format!("unknown --mode `{other}` (use add|del)")),
    };
    let engine = TopKAnalysis::new(&circuit, budget_config(opts)?);
    let result = match (mode, opts.has("peel")) {
        (Mode::Addition, _) => engine.addition_set(k),
        (Mode::Elimination, false) => engine.elimination_set(k),
        (Mode::Elimination, true) => engine.elimination_set_peeled(k, (k / 5).max(1)),
    }
    .map_err(|e| e.to_string())?;

    println!("top-{k} {} set on {}:", mode.name(), circuit.stats());
    for &cc in result.couplings() {
        let c = circuit.coupling(cc);
        println!(
            "  {cc}: {} -- {} ({:.2} fF)",
            circuit.net(c.a()).name(),
            circuit.net(c.b()).name(),
            c.cap()
        );
    }
    println!(
        "delay {:.3} -> {:.3} ns ({:+.1} ps) in {:.2?}",
        result.delay_before() / 1000.0,
        result.delay_after() / 1000.0,
        result.delay_after() - result.delay_before(),
        result.runtime()
    );
    report_resilience(&circuit, &result);
    Ok(())
}

/// The designer's fix loop, one command: run the full analysis, pretend
/// the reported worst set has been fixed (shielded / rerouted, i.e. its
/// couplings masked out), and re-verify **incrementally** through a
/// [`WhatIfSession`] — only the dirty fanout cone of the touched couplings
/// is re-swept, the rest of the circuit is served from the session cache.
fn cmd_whatif(opts: &Opts) -> Result<(), String> {
    let circuit = load_circuit(opts)?;
    let k: usize = opts.num("k", 10)?;
    let mode = match opts.flag("mode") {
        Some("del") | Some("elim") | None => Mode::Elimination,
        Some("add") => Mode::Addition,
        Some(other) => return Err(format!("unknown --mode `{other}` (use add|del)")),
    };
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());

    // --load resumes from a checksummed artifact; anything wrong with the
    // bytes (truncation, bit rot, version skew, different circuit) is
    // reported and the command falls back to a from-scratch sweep. A bad
    // artifact can cost the cache, never the answer.
    let full_start = std::time::Instant::now();
    let mut session = match opts.flag("load") {
        Some(path) => {
            let bytes = fs::read(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            match WhatIfSession::resume(&engine, &bytes) {
                Ok(s) => {
                    if s.mode() != mode || s.k() != k {
                        eprintln!(
                            "note: `{path}` stores a {} k={} session; \
                             command-line --mode/-k are ignored",
                            s.mode().name(),
                            s.k()
                        );
                    }
                    println!("resumed session from `{path}` ({} bytes)", bytes.len());
                    s
                }
                Err(e) => {
                    eprintln!("cannot resume from `{path}`: {e}");
                    eprintln!("falling back to a from-scratch sweep");
                    WhatIfSession::start(&engine, mode, k).map_err(|e| e.to_string())?
                }
            }
        }
        None => WhatIfSession::start(&engine, mode, k).map_err(|e| e.to_string())?,
    };
    let full_ms = full_start.elapsed().as_secs_f64() * 1e3;
    let (mode, k) = (session.mode(), session.k());
    let base = session.result().clone();

    // --save snapshots the session (I-list caches, counters, quarantines,
    // last result) before the what-if delta, so a later --load skips the
    // expensive full sweep and replays only the incremental part.
    if let Some(path) = opts.flag("save") {
        let artifact = session.save_artifact();
        fs::write(path, &artifact).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("saved session to {path} ({} bytes)", artifact.len());
    }

    println!("top-{k} {} set on {}:", mode.name(), circuit.stats());
    for &cc in base.couplings() {
        let c = circuit.coupling(cc);
        println!(
            "  {cc}: {} -- {} ({:.2} fF)",
            circuit.net(c.a()).name(),
            circuit.net(c.b()).name(),
            c.cap()
        );
    }

    let fix: Vec<_> = base.couplings().to_vec();
    let delta = MaskDelta::remove(&fix);
    let inc_start = std::time::Instant::now();
    let outcome = session.apply(&delta).map_err(|e| e.to_string())?;
    let inc_ms = inc_start.elapsed().as_secs_f64() * 1e3;

    let fixed = outcome.result();
    println!(
        "what-if fix of {} coupling(s): delay {:.3} -> {:.3} ns ({:+.1} ps recovered)",
        fix.len(),
        base.delay_after() / 1000.0,
        fixed.delay_after() / 1000.0,
        base.delay_after() - fixed.delay_after(),
    );
    println!(
        "incremental re-verify: {}/{} victims re-swept ({} served from cache) \
         in {inc_ms:.1} ms (initial full run took {full_ms:.1} ms)",
        outcome.recomputed_victims(),
        outcome.total_victims(),
        outcome.cached_victims(),
    );
    report_resilience(&circuit, fixed);

    // --audit cross-checks the incremental answer against a from-scratch
    // run under the same mask, and the dirty set against the L035 rule.
    if opts.has("audit") {
        let scratch = engine.run_with_mask(mode, k, session.mask()).map_err(|e| e.to_string())?;
        let same = fixed.couplings() == scratch.couplings()
            && fixed.sink() == scratch.sink()
            && fixed.delay_before().to_bits() == scratch.delay_before().to_bits()
            && fixed.delay_after().to_bits() == scratch.delay_after().to_bits()
            && fixed.predicted_delay().to_bits() == scratch.predicted_delay().to_bits();
        if !same {
            return Err("audit failed: incremental result diverged from from-scratch".into());
        }
        let diags = lint_dirty_closure(
            &circuit,
            &CouplingMask::all(&circuit),
            session.mask(),
            outcome.dirty_flags(),
        );
        if diags.has_errors() {
            return Err(format!("audit failed: dirty set incoherent\n{}", diags.render_text()));
        }
        println!("audit: incremental == from-scratch (bit-identical), dirty closure coherent");
    }
    Ok(())
}

fn cmd_paths(opts: &Opts) -> Result<(), String> {
    let circuit = load_circuit(opts)?;
    let k: usize = opts.num("k", 5)?;
    let model = LinearDelayModel::new();
    let cfg = StaConfig::default();
    let timing = TimingReport::run(&circuit, &model, &cfg).map_err(|e| e.to_string())?;
    println!("circuit delay: {:.3} ns", timing.circuit_delay() / 1000.0);
    for (i, p) in top_k_paths(&circuit, &model, &cfg, k).iter().enumerate() {
        let names: Vec<&str> = p.nets().iter().map(|&n| circuit.net(n).name()).collect();
        println!("#{:<2} {:.3} ns  {}", i + 1, p.arrival() / 1000.0, names.join(" -> "));
    }
    Ok(())
}

fn cmd_glitch(opts: &Opts) -> Result<(), String> {
    let circuit = load_circuit(opts)?;
    let margin: f64 = opts.num("margin", 0.4)?;
    let timing = TimingReport::run(&circuit, &LinearDelayModel::new(), &StaConfig::default())
        .map_err(|e| e.to_string())?;
    let reports = glitch::check(
        &circuit,
        &NoiseConfig::default(),
        timing.timings(),
        &CouplingMask::all(&circuit),
        glitch::NoiseMargin { low: margin, high: margin },
    );
    let violations = reports.iter().filter(|r| r.violated()).count();
    println!(
        "glitch check (margin {margin:.2}): {} nets checked, {} violations",
        reports.len(),
        violations
    );
    for r in reports.iter().take(10) {
        println!(
            "  {:>12}  peak {:.3}  slack {:+.3}{}",
            circuit.net(r.net).name(),
            r.peak,
            r.slack(),
            if r.violated() { "  VIOLATED" } else { "" }
        );
    }
    Ok(())
}

fn cmd_lint(opts: &Opts) -> Result<(), String> {
    let circuit = load_circuit(opts)?;

    let mut diags = lint_circuit(&circuit);
    diags.merge(lint_config(&TopKConfig::default()));

    // The static timing windows every downstream analysis consumes.
    match TimingReport::run(&circuit, &LinearDelayModel::new(), &StaConfig::default()) {
        Ok(timing) => diags.merge(lint_timing(&circuit, timing.timings())),
        Err(e) => return Err(format!("cannot derive timing windows: {e}")),
    }

    // --deep additionally runs a small top-k analysis end to end and
    // verifies the engine's answer, then exercises an incremental what-if
    // session and checks its dirty-set bookkeeping against the L035
    // session-cache-coherence rule.
    if opts.has("deep") {
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        let result = engine.addition_set(2).map_err(|e| e.to_string())?;
        diags.merge(lint_result(&circuit, &result, &CouplingSet::new()));

        let mut session = WhatIfSession::start(&engine, Mode::Elimination, 2)
            .map_err(|e| format!("deep lint: cannot start what-if session: {e}"))?;
        let worst: Vec<_> = session.result().couplings().to_vec();
        let outcome = session
            .apply(&MaskDelta::remove(&worst))
            .map_err(|e| format!("deep lint: what-if apply failed: {e}"))?;
        diags.merge(lint_dirty_closure(
            &circuit,
            &CouplingMask::all(&circuit),
            session.mask(),
            outcome.dirty_flags(),
        ));
    }

    diags.sort();
    render_lint(&diags, opts.has("json"));
    if diags.has_errors() {
        Err(format!("lint failed with {} error(s)", diags.error_count()))
    } else {
        Ok(())
    }
}

fn cmd_bench(opts: &Opts) -> Result<(), String> {
    // Audit mode: validate an existing report (used by the CI smoke run).
    if let Some(path) = opts.flag("check") {
        let text = fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        topk_bench::validate_json(&text).map_err(|e| format!("`{path}`: {e}"))?;
        println!("{path}: well-formed {} report", topk_bench::SCHEMA);
        return Ok(());
    }

    let mut spec = topk_bench::BenchSpec::default();
    if opts.has("quick") {
        spec.circuits = vec!["i1".into()];
        spec.k = spec.k.min(3);
    }
    if let Some(list) = opts.flag("circuits") {
        spec.circuits = list.split(',').map(str::to_owned).collect();
    }
    spec.k = opts.num("k", spec.k)?;
    spec.samples = opts.num("samples", spec.samples)?;
    spec.seed = opts.num("seed", spec.seed)?;

    let report = topk_bench::run(&spec)?;
    print!("{}", report.render_table());
    if opts.has("json") {
        let path = opts.flag("out").unwrap_or("BENCH_topk.json");
        fs::write(path, report.to_json()).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote {path} (host_threads = {})", report.host_threads);
    }
    if report.entries.iter().any(|e| !e.identical_to_serial) {
        return Err("a parallel run diverged from its serial reference".into());
    }
    Ok(())
}

fn render_lint(diags: &Diagnostics, json: bool) {
    if json {
        println!("{}", diags.render_json());
    } else {
        println!("{}", diags.render_text());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn unknown_command_errors() {
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn help_and_empty_succeed() {
        assert!(dispatch(&argv(&["help"])).is_ok());
        assert!(dispatch(&argv(&[])).is_ok());
    }

    #[test]
    fn generate_analyze_topk_round_trip() {
        let dir = std::env::temp_dir().join("dna_cli_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckt");
        let path_s = path.to_str().unwrap().to_owned();

        dispatch(&argv(&[
            "generate",
            "--gates",
            "15",
            "--couplings",
            "12",
            "--seed",
            "3",
            "--o",
            &path_s,
        ]))
        .unwrap();
        assert!(path.exists());

        dispatch(&argv(&["analyze", &path_s])).unwrap();
        dispatch(&argv(&["topk", &path_s, "--mode", "add", "--k", "2"])).unwrap();
        dispatch(&argv(&["topk", &path_s, "--mode", "del", "--k", "2", "--peel"])).unwrap();
        dispatch(&argv(&["paths", &path_s, "--k", "3"])).unwrap();
        dispatch(&argv(&["glitch", &path_s])).unwrap();
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn whatif_runs_and_audits() {
        let dir = std::env::temp_dir().join("dna_cli_test_whatif");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckt");
        let path_s = path.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "18",
            "--couplings",
            "14",
            "--seed",
            "7",
            "--o",
            &path_s,
        ]))
        .unwrap();
        dispatch(&argv(&["whatif", &path_s, "--k", "2", "--audit"])).unwrap();
        dispatch(&argv(&["whatif", &path_s, "--mode", "add", "--k", "2", "--audit"])).unwrap();
        let e = dispatch(&argv(&["whatif", &path_s, "--mode", "sideways"])).unwrap_err();
        assert!(e.contains("unknown --mode"));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lint_passes_on_generated_circuit() {
        let dir = std::env::temp_dir().join("dna_cli_test_lint");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckt");
        let path_s = path.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "20",
            "--couplings",
            "15",
            "--seed",
            "11",
            "--o",
            &path_s,
        ]))
        .unwrap();
        dispatch(&argv(&["lint", &path_s])).unwrap();
        dispatch(&argv(&["lint", &path_s, "--json", "--deep"])).unwrap();
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn topk_budget_flags_degrade_soundly() {
        let dir = std::env::temp_dir().join("dna_cli_test_budget");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckt");
        let path_s = path.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "16",
            "--couplings",
            "12",
            "--seed",
            "5",
            "--o",
            &path_s,
        ]))
        .unwrap();
        // A brutal budget still succeeds: the result is degraded, not an error.
        dispatch(&argv(&["topk", &path_s, "--mode", "del", "--k", "3", "--victim-budget", "1"]))
            .unwrap();
        dispatch(&argv(&["topk", &path_s, "--mode", "add", "--k", "2", "--global-budget", "0"]))
            .unwrap();
        dispatch(&argv(&["topk", &path_s, "--k", "2", "--deadline-ms", "0"])).unwrap();
        let e = dispatch(&argv(&["topk", &path_s, "--victim-budget", "lots"])).unwrap_err();
        assert!(e.contains("--victim-budget"));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn whatif_save_load_round_trip_and_corrupt_fallback() {
        let dir = std::env::temp_dir().join("dna_cli_test_artifact");
        fs::create_dir_all(&dir).unwrap();
        let ckt = dir.join("t.ckt");
        let ckt_s = ckt.to_str().unwrap().to_owned();
        let art = dir.join("t.dna");
        let art_s = art.to_str().unwrap().to_owned();
        dispatch(&argv(&[
            "generate",
            "--gates",
            "18",
            "--couplings",
            "14",
            "--seed",
            "9",
            "--o",
            &ckt_s,
        ]))
        .unwrap();

        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--save", &art_s])).unwrap();
        assert!(art.exists());
        // Clean artifact resumes and still passes the bit-identity audit.
        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--load", &art_s, "--audit"])).unwrap();

        // Truncate the artifact: the loader must detect it and the command
        // must still succeed via the from-scratch fallback.
        let bytes = fs::read(&art).unwrap();
        fs::write(&art, &bytes[..bytes.len() / 2]).unwrap();
        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--load", &art_s, "--audit"])).unwrap();

        // Flip one payload byte: CRC mismatch, same graceful fallback.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        fs::write(&art, &flipped).unwrap();
        dispatch(&argv(&["whatif", &ckt_s, "--k", "2", "--load", &art_s, "--audit"])).unwrap();

        fs::remove_file(&ckt).unwrap();
        fs::remove_file(&art).unwrap();
    }

    #[test]
    fn missing_file_reports_error() {
        let e = dispatch(&argv(&["analyze", "/nonexistent/x.ckt"])).unwrap_err();
        assert!(e.contains("cannot read"));
    }

    #[test]
    fn bad_mode_reports_error() {
        let dir = std::env::temp_dir().join("dna_cli_test2");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckt");
        let path_s = path.to_str().unwrap().to_owned();
        dispatch(&argv(&["generate", "--gates", "8", "--couplings", "4", "--o", &path_s])).unwrap();
        let e = dispatch(&argv(&["topk", &path_s, "--mode", "sideways"])).unwrap_err();
        assert!(e.contains("unknown --mode"));
        fs::remove_file(&path).unwrap();
    }
}
