//! Minimal flag parsing (the workspace carries no CLI dependency).

use std::collections::HashMap;

/// Parsed command line: positional arguments plus `--flag value` /
/// `--flag` options.
#[derive(Debug, Default, Clone)]
pub struct Opts {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

impl Opts {
    /// Splits arguments into positionals and flags. A flag consumes the
    /// next argument as its value unless that argument is itself a flag,
    /// in which case it is boolean-valued (`"true"`).
    pub fn parse(args: &[String]) -> Self {
        let mut out = Opts::default();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                let value = match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        i += 1;
                        v.clone()
                    }
                    _ => "true".to_owned(),
                };
                out.flags.insert(name.to_owned(), value);
            } else {
                out.positional.push(a.clone());
            }
            i += 1;
        }
        out
    }

    /// Positional argument by index.
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positional.get(index).map(String::as_str)
    }

    /// String flag value.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// Parsed numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for --{name}: `{v}`")),
        }
    }

    /// Whether a boolean flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn mixed_positionals_and_flags() {
        let o = Opts::parse(&args(&["analyze", "x.ckt", "--seed", "7", "--quiet"]));
        assert_eq!(o.positional(0), Some("analyze"));
        assert_eq!(o.positional(1), Some("x.ckt"));
        assert_eq!(o.flag("seed"), Some("7"));
        assert!(o.has("quiet"));
        assert_eq!(o.num::<u64>("seed", 0).unwrap(), 7);
        assert_eq!(o.num::<u64>("missing", 42).unwrap(), 42);
    }

    #[test]
    fn flag_followed_by_flag_is_boolean() {
        let o = Opts::parse(&args(&["--a", "--b", "v"]));
        assert_eq!(o.flag("a"), Some("true"));
        assert_eq!(o.flag("b"), Some("v"));
    }

    #[test]
    fn bad_number_reports_error() {
        let o = Opts::parse(&args(&["--k", "lots"]));
        assert!(o.num::<usize>("k", 1).is_err());
    }
}
