//! `dna` — crosstalk delay-noise analysis from the command line.
//!
//! ```text
//! dna generate --gates 100 --couplings 300 --seed 7 -o design.ckt
//! dna analyze design.ckt                 # iterative noise analysis report
//! dna topk design.ckt --mode add -k 10   # top-k aggressor addition set
//! dna topk design.ckt --mode del -k 10   # top-k aggressor elimination set
//! dna paths design.ckt -k 5              # top-k critical paths
//! dna glitch design.ckt --margin 0.4     # functional noise check
//! dna lint design.ckt --json --deep      # verify IR and analysis invariants
//! ```
//!
//! Circuits are read and written in the `.ckt` text format of
//! [`dna_netlist::format`]; `dna generate` also accepts the benchmark
//! names `i1`..`i10` via `--bench`.

use std::process::ExitCode;

mod commands;
mod opts;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dna: {e}");
            ExitCode::FAILURE
        }
    }
}
