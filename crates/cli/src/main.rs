//! `dna` — crosstalk delay-noise analysis from the command line.
//!
//! ```text
//! dna generate --gates 100 --couplings 300 --seed 7 -o design.ckt
//! dna analyze design.ckt                 # iterative noise analysis report
//! dna topk design.ckt --mode add -k 10   # top-k aggressor addition set
//! dna topk design.ckt --mode del -k 10   # top-k aggressor elimination set
//! dna paths design.ckt -k 5              # top-k critical paths
//! dna glitch design.ckt --margin 0.4     # functional noise check
//! dna lint design.ckt --json --deep      # verify IR and analysis invariants
//! ```
//!
//! Circuits are read and written in the `.ckt` text format of
//! [`dna_netlist::format`]; `dna generate` also accepts the benchmark
//! names `i1`..`i10` via `--bench`.

// Accepted `clippy::pedantic` baseline. The CI_FULL pedantic triage in
// `ci.sh` is non-gating; this allowlist keeps its output limited to new
// findings. Numeric casts between index/size types are pervasive and
// intentional here, exact float comparison is the point of the
// bit-identity contracts, and short or similar names mirror the paper's
// notation.
#![allow(
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::many_single_char_names,
    clippy::missing_panics_doc,
    clippy::similar_names,
    clippy::too_many_lines
)]

use std::process::ExitCode;

mod commands;
mod opts;
mod serve_cmd;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dna: {e}");
            ExitCode::FAILURE
        }
    }
}
