//! Standard cells and their linear electrical parameters.
//!
//! Units across the workspace: resistance in **kΩ**, capacitance in **fF**,
//! time in **ps** (so `R·C` directly yields picoseconds).

use std::fmt;
use std::str::FromStr;

/// Logic function / footprint of a standard cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 3-input NAND.
    Nand3,
    /// 3-input NOR.
    Nor3,
    /// 2:1 multiplexer (select, a, b).
    Mux2,
}

impl CellKind {
    /// Number of input pins of the cell.
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf => 1,
            CellKind::Nand2 | CellKind::Nor2 | CellKind::And2 | CellKind::Or2 | CellKind::Xor2 => 2,
            CellKind::Nand3 | CellKind::Nor3 | CellKind::Mux2 => 3,
        }
    }

    /// Whether the cell logically inverts (used when propagating edges).
    #[must_use]
    pub fn inverting(self) -> bool {
        matches!(
            self,
            CellKind::Inv | CellKind::Nand2 | CellKind::Nor2 | CellKind::Nand3 | CellKind::Nor3
        )
    }

    /// All cell kinds, in a stable order.
    #[must_use]
    pub fn all() -> &'static [CellKind] {
        &[
            CellKind::Inv,
            CellKind::Buf,
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::And2,
            CellKind::Or2,
            CellKind::Xor2,
            CellKind::Nand3,
            CellKind::Nor3,
            CellKind::Mux2,
        ]
    }

    /// Canonical lower-case name used by the text netlist format.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CellKind::Inv => "inv",
            CellKind::Buf => "buf",
            CellKind::Nand2 => "nand2",
            CellKind::Nor2 => "nor2",
            CellKind::And2 => "and2",
            CellKind::Or2 => "or2",
            CellKind::Xor2 => "xor2",
            CellKind::Nand3 => "nand3",
            CellKind::Nor3 => "nor3",
            CellKind::Mux2 => "mux2",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown cell name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCellKindError(pub String);

impl fmt::Display for ParseCellKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown cell kind `{}`", self.0)
    }
}

impl std::error::Error for ParseCellKindError {}

impl FromStr for CellKind {
    type Err = ParseCellKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CellKind::all()
            .iter()
            .copied()
            .find(|k| k.name() == s)
            .ok_or_else(|| ParseCellKindError(s.to_owned()))
    }
}

/// Linear electrical model of a standard cell (paper §2: the linear noise
/// framework trades accuracy for runtime, as industrial linear tools do).
///
/// * `delay = intrinsic_delay + drive_resistance · C_load`
/// * `output slew = intrinsic_slew + 2 · drive_resistance · C_load`
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Which logic cell this parameterizes.
    pub kind: CellKind,
    /// Fixed delay component in ps.
    pub intrinsic_delay: f64,
    /// Output drive (Thevenin) resistance in kΩ.
    pub drive_resistance: f64,
    /// Capacitance each input pin presents, in fF.
    pub input_cap: f64,
    /// Output slew at zero load, in ps.
    pub intrinsic_slew: f64,
}

impl Cell {
    /// Gate delay (ps) driving `c_load` fF.
    ///
    /// # Example
    ///
    /// ```
    /// use dna_netlist::{Cell, CellKind};
    ///
    /// let inv = Cell {
    ///     kind: CellKind::Inv,
    ///     intrinsic_delay: 15.0,
    ///     drive_resistance: 2.0,
    ///     input_cap: 3.0,
    ///     intrinsic_slew: 20.0,
    /// };
    /// assert_eq!(inv.delay(10.0), 35.0); // 15 + 2 kΩ · 10 fF = 35 ps
    /// ```
    #[must_use]
    pub fn delay(&self, c_load: f64) -> f64 {
        self.intrinsic_delay + self.drive_resistance * c_load
    }

    /// Output slew (ps) driving `c_load` fF.
    #[must_use]
    pub fn output_slew(&self, c_load: f64) -> f64 {
        self.intrinsic_slew + 2.0 * self.drive_resistance * c_load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_kind() {
        assert_eq!(CellKind::Inv.arity(), 1);
        assert_eq!(CellKind::Nand2.arity(), 2);
        assert_eq!(CellKind::Mux2.arity(), 3);
    }

    #[test]
    fn name_round_trips_through_parse() {
        for &k in CellKind::all() {
            let parsed: CellKind = k.name().parse().unwrap();
            assert_eq!(parsed, k);
        }
        assert!("frob".parse::<CellKind>().is_err());
    }

    #[test]
    fn inverting_flags() {
        assert!(CellKind::Inv.inverting());
        assert!(CellKind::Nand2.inverting());
        assert!(!CellKind::Buf.inverting());
        assert!(!CellKind::And2.inverting());
    }

    #[test]
    fn linear_delay_model() {
        let c = Cell {
            kind: CellKind::Buf,
            intrinsic_delay: 10.0,
            drive_resistance: 1.5,
            input_cap: 2.0,
            intrinsic_slew: 12.0,
        };
        assert_eq!(c.delay(0.0), 10.0);
        assert_eq!(c.delay(20.0), 40.0);
        assert_eq!(c.output_slew(20.0), 72.0);
    }
}
