//! Cell libraries.

use std::fmt;

use crate::{Cell, CellKind};

/// A complete set of characterized standard cells.
///
/// The library plays the role of the paper's 0.13 µm standard-cell library:
/// every [`CellKind`] maps to one characterized [`Cell`]. The default
/// library ([`Library::cmos013`]) uses 0.13 µm-flavoured constants
/// (intrinsic delays of tens of ps, drive resistances of a few kΩ, input
/// caps of a few fF).
///
/// # Example
///
/// ```
/// use dna_netlist::{Library, CellKind};
///
/// let lib = Library::cmos013();
/// let nand = lib.cell(CellKind::Nand2);
/// assert!(nand.delay(10.0) > nand.intrinsic_delay);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    name: String,
    cells: Vec<Cell>,
}

impl Library {
    /// Builds a library from explicit cells.
    ///
    /// # Panics
    ///
    /// Panics if any [`CellKind`] is missing or duplicated.
    #[must_use]
    pub fn new(name: impl Into<String>, cells: Vec<Cell>) -> Self {
        let mut ordered: Vec<Option<Cell>> = vec![None; CellKind::all().len()];
        for cell in cells {
            let slot = Self::slot(cell.kind);
            assert!(ordered[slot].is_none(), "duplicate cell for {}", cell.kind);
            ordered[slot] = Some(cell);
        }
        let cells: Vec<Cell> = ordered
            .into_iter()
            .enumerate()
            .map(|(i, c)| c.unwrap_or_else(|| panic!("missing cell for {}", CellKind::all()[i])))
            .collect();
        Self { name: name.into(), cells }
    }

    /// A 0.13 µm-flavoured default library.
    ///
    /// Constants are representative, not extracted from a real PDK: the
    /// paper's framework only needs delays to scale linearly with load and
    /// drive strength to vary across cells.
    #[must_use]
    pub fn cmos013() -> Self {
        let mk = |kind, d0, r, cin, s0| Cell {
            kind,
            intrinsic_delay: d0,
            drive_resistance: r,
            input_cap: cin,
            intrinsic_slew: s0,
        };
        Self::new(
            "cmos013",
            vec![
                mk(CellKind::Inv, 12.0, 1.6, 2.4, 14.0),
                mk(CellKind::Buf, 22.0, 1.2, 2.2, 16.0),
                mk(CellKind::Nand2, 18.0, 2.2, 3.0, 20.0),
                mk(CellKind::Nor2, 22.0, 2.8, 3.0, 24.0),
                mk(CellKind::And2, 28.0, 1.8, 2.8, 22.0),
                mk(CellKind::Or2, 30.0, 2.0, 2.8, 24.0),
                mk(CellKind::Xor2, 36.0, 2.6, 3.6, 28.0),
                mk(CellKind::Nand3, 24.0, 2.6, 3.2, 26.0),
                mk(CellKind::Nor3, 30.0, 3.4, 3.2, 30.0),
                mk(CellKind::Mux2, 34.0, 2.4, 3.0, 26.0),
            ],
        )
    }

    /// Library name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The characterized cell for `kind`.
    #[must_use]
    pub fn cell(&self, kind: CellKind) -> &Cell {
        &self.cells[Self::slot(kind)]
    }

    /// Iterator over all cells.
    pub fn cells(&self) -> impl Iterator<Item = &Cell> {
        self.cells.iter()
    }

    fn slot(kind: CellKind) -> usize {
        CellKind::all().iter().position(|&k| k == kind).expect("CellKind::all covers every kind")
    }
}

impl Default for Library {
    fn default() -> Self {
        Self::cmos013()
    }
}

impl fmt::Display for Library {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "library `{}` ({} cells)", self.name, self.cells.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_library_covers_all_kinds() {
        let lib = Library::cmos013();
        for &k in CellKind::all() {
            let c = lib.cell(k);
            assert_eq!(c.kind, k);
            assert!(c.intrinsic_delay > 0.0);
            assert!(c.drive_resistance > 0.0);
            assert!(c.input_cap > 0.0);
        }
        assert_eq!(lib.cells().count(), CellKind::all().len());
    }

    #[test]
    #[should_panic(expected = "missing cell")]
    fn missing_cell_panics() {
        let lib = Library::cmos013();
        let partial: Vec<Cell> = lib.cells().take(3).copied().collect();
        let _ = Library::new("partial", partial);
    }

    #[test]
    #[should_panic(expected = "duplicate cell")]
    fn duplicate_cell_panics() {
        let lib = Library::cmos013();
        let mut cells: Vec<Cell> = lib.cells().copied().collect();
        cells.push(*lib.cell(CellKind::Inv));
        let _ = Library::new("dup", cells);
    }

    #[test]
    fn default_is_cmos013() {
        assert_eq!(Library::default(), Library::cmos013());
        assert_eq!(Library::default().name(), "cmos013");
    }
}
