//! Incremental circuit construction with validation at `build()`.

use std::collections::HashMap;

use crate::{
    topo, CellKind, Circuit, Coupling, CouplingId, Gate, GateId, Library, Net, NetId, NetSource,
    NetlistError,
};

/// Builder for [`Circuit`]s.
///
/// Nets are created by [`input`](Self::input) (primary inputs) and
/// [`gate`](Self::gate) (each gate drives a fresh net named after the
/// gate). Validation that needs the whole picture — acyclicity, the
/// presence of outputs — happens in [`build`](Self::build); per-call
/// validation (arity, duplicate names, negative capacitance) happens
/// eagerly.
///
/// # Example
///
/// ```
/// use dna_netlist::{CircuitBuilder, Library, CellKind};
///
/// let mut b = CircuitBuilder::new(Library::cmos013());
/// let a = b.input("a");
/// let bb = b.input("b");
/// let y = b.gate(CellKind::Nand2, "u1", &[a, bb])?;
/// b.wire_cap(y, 8.0)?;
/// b.coupling(a, y, 4.0)?;
/// b.output(y);
/// let circuit = b.build()?;
/// assert_eq!(circuit.num_couplings(), 1);
/// # Ok::<(), dna_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    library: Library,
    gates: Vec<Gate>,
    nets: Vec<Net>,
    couplings: Vec<Coupling>,
    names: HashMap<String, NetId>,
    default_wire_cap: f64,
}

impl CircuitBuilder {
    /// Creates an empty builder over the given library.
    #[must_use]
    pub fn new(library: Library) -> Self {
        Self {
            library,
            gates: Vec::new(),
            nets: Vec::new(),
            couplings: Vec::new(),
            names: HashMap::new(),
            default_wire_cap: 2.0,
        }
    }

    /// Sets the wire capacitance (fF) newly created nets start with.
    pub fn set_default_wire_cap(&mut self, cap: f64) -> &mut Self {
        self.default_wire_cap = cap;
        self
    }

    fn add_net(&mut self, name: String, source: NetSource) -> Result<NetId, NetlistError> {
        if self.names.contains_key(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        let id = NetId::new(self.nets.len() as u32);
        self.names.insert(name.clone(), id);
        self.nets.push(Net {
            name,
            source,
            loads: Vec::new(),
            wire_cap: self.default_wire_cap,
            is_output: false,
            position: None,
        });
        Ok(id)
    }

    /// Declares a primary input net.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken (inputs are usually declared
    /// first, from a known-unique list; use [`try_input`](Self::try_input)
    /// when that is not guaranteed).
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        self.try_input(name).expect("duplicate primary input name")
    }

    /// Declares a primary input net, reporting name collisions.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn try_input(&mut self, name: impl Into<String>) -> Result<NetId, NetlistError> {
        self.add_net(name.into(), NetSource::PrimaryInput)
    }

    /// Instantiates a gate; the returned net is its output, named after
    /// the gate.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] when the number of inputs
    /// does not match the cell and [`NetlistError::DuplicateName`] when the
    /// gate name collides with an existing net.
    pub fn gate(
        &mut self,
        kind: CellKind,
        name: impl Into<String>,
        inputs: &[NetId],
    ) -> Result<NetId, NetlistError> {
        let name = name.into();
        let gate_id = GateId::new(self.gates.len() as u32);
        if inputs.len() != kind.arity() {
            return Err(NetlistError::ArityMismatch {
                gate: gate_id,
                expected: kind.arity(),
                got: inputs.len(),
            });
        }
        let output = self.add_net(name.clone(), NetSource::Gate(gate_id))?;
        for &i in inputs {
            self.nets[i.index()].loads.push(gate_id);
        }
        self.gates.push(Gate { name, kind, inputs: inputs.to_vec(), output });
        Ok(output)
    }

    /// Marks `net` as a primary output (timing sink).
    pub fn output(&mut self, net: NetId) -> &mut Self {
        self.nets[net.index()].is_output = true;
        self
    }

    /// Sets the grounded wire capacitance of `net` in fF.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidParameter`] for negative or
    /// non-finite values.
    pub fn wire_cap(&mut self, net: NetId, cap: f64) -> Result<&mut Self, NetlistError> {
        if !cap.is_finite() || cap < 0.0 {
            return Err(NetlistError::InvalidParameter { what: "wire capacitance", value: cap });
        }
        self.nets[net.index()].wire_cap = cap;
        Ok(self)
    }

    /// Records a placement position for `net` (used by the synthetic
    /// generator's geometric coupling assignment).
    pub fn position(&mut self, net: NetId, x: f64, y: f64) -> &mut Self {
        self.nets[net.index()].position = Some((x, y));
        self
    }

    /// Adds a coupling capacitor of `cap` fF between two distinct nets.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::SelfCoupling`] when `a == b` and
    /// [`NetlistError::InvalidParameter`] for a non-positive or non-finite
    /// capacitance.
    pub fn coupling(&mut self, a: NetId, b: NetId, cap: f64) -> Result<CouplingId, NetlistError> {
        if a == b {
            return Err(NetlistError::SelfCoupling(a));
        }
        if !cap.is_finite() || cap <= 0.0 {
            return Err(NetlistError::InvalidParameter {
                what: "coupling capacitance",
                value: cap,
            });
        }
        let id = CouplingId::new(self.couplings.len() as u32);
        self.couplings.push(Coupling { a, b, cap });
        Ok(id)
    }

    /// Resolves a declared net name.
    #[must_use]
    pub fn net_named(&self, name: &str) -> Option<NetId> {
        self.names.get(name).copied()
    }

    /// Number of gate loads currently attached to `net`.
    #[must_use]
    pub fn num_loads(&self, net: NetId) -> usize {
        self.nets[net.index()].loads.len()
    }

    /// Placement position of `net`, if one was recorded.
    #[must_use]
    pub fn position_of(&self, net: NetId) -> Option<(f64, f64)> {
        self.nets[net.index()].position
    }

    /// Number of gates added so far.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets added so far.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Validates and freezes the circuit.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] for cyclic netlists and
    /// [`NetlistError::NoOutputs`] when no net was marked as an output.
    pub fn build(self) -> Result<Circuit, NetlistError> {
        let gate_topo = topo::topo_sort_gates(&self.gates, &self.nets)?;

        let outputs: Vec<NetId> = (0..self.nets.len() as u32)
            .map(NetId::new)
            .filter(|&n| self.nets[n.index()].is_output)
            .collect();
        if outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }

        let mut net_topo: Vec<NetId> = (0..self.nets.len() as u32)
            .map(NetId::new)
            .filter(|&n| matches!(self.nets[n.index()].source, NetSource::PrimaryInput))
            .collect();
        net_topo.extend(gate_topo.iter().map(|&g| self.gates[g.index()].output));

        let mut couplings_by_net: Vec<Vec<CouplingId>> = vec![Vec::new(); self.nets.len()];
        for (i, c) in self.couplings.iter().enumerate() {
            let id = CouplingId::new(i as u32);
            couplings_by_net[c.a.index()].push(id);
            couplings_by_net[c.b.index()].push(id);
        }

        Ok(Circuit {
            library: self.library,
            gates: self.gates,
            nets: self.nets,
            couplings: self.couplings,
            gate_topo,
            net_topo,
            couplings_by_net,
            outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder() -> CircuitBuilder {
        CircuitBuilder::new(Library::cmos013())
    }

    #[test]
    fn simple_chain_builds() {
        let mut b = builder();
        let a = b.input("a");
        let n1 = b.gate(CellKind::Inv, "u1", &[a]).unwrap();
        let n2 = b.gate(CellKind::Buf, "u2", &[n1]).unwrap();
        b.output(n2);
        let c = b.build().unwrap();
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.num_nets(), 3);
        assert_eq!(c.primary_outputs(), &[n2]);
        assert_eq!(c.net(n1).loads().len(), 1);
        // Net topological order: PI first, then gate outputs in order.
        assert_eq!(c.nets_topological()[0], a);
    }

    #[test]
    fn arity_checked_eagerly() {
        let mut b = builder();
        let a = b.input("a");
        let err = b.gate(CellKind::Nand2, "u1", &[a]).unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { expected: 2, got: 1, .. }));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = builder();
        let a = b.input("a");
        assert!(b.try_input("a").is_err());
        let err = b.gate(CellKind::Inv, "a", &[a]).unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateName(_)));
    }

    #[test]
    fn no_outputs_rejected() {
        let mut b = builder();
        let a = b.input("a");
        b.gate(CellKind::Inv, "u1", &[a]).unwrap();
        assert!(matches!(b.build(), Err(NetlistError::NoOutputs)));
    }

    #[test]
    fn self_coupling_rejected() {
        let mut b = builder();
        let a = b.input("a");
        assert!(matches!(b.coupling(a, a, 1.0), Err(NetlistError::SelfCoupling(_))));
    }

    #[test]
    fn bad_caps_rejected() {
        let mut b = builder();
        let a = b.input("a");
        let x = b.input("x");
        assert!(b.coupling(a, x, 0.0).is_err());
        assert!(b.coupling(a, x, f64::NAN).is_err());
        assert!(b.wire_cap(a, -1.0).is_err());
    }

    #[test]
    fn coupling_index_is_built() {
        let mut b = builder();
        let a = b.input("a");
        let x = b.input("x");
        let y = b.gate(CellKind::And2, "u1", &[a, x]).unwrap();
        b.output(y);
        let c1 = b.coupling(a, y, 2.0).unwrap();
        let c2 = b.coupling(x, y, 3.0).unwrap();
        let c = b.build().unwrap();
        assert_eq!(c.couplings_on(y), &[c1, c2]);
        assert_eq!(c.couplings_on(a), &[c1]);
        assert_eq!(c.coupling(c2).cap(), 3.0);
    }

    #[test]
    fn load_cap_sums_components() {
        let mut b = builder();
        let a = b.input("a");
        let y = b.gate(CellKind::Inv, "u1", &[a]).unwrap();
        let z = b.gate(CellKind::Inv, "u2", &[y]).unwrap();
        b.output(z);
        b.wire_cap(y, 10.0).unwrap();
        b.coupling(a, y, 4.0).unwrap();
        let c = b.build().unwrap();
        let inv_cin = c.library().cell(CellKind::Inv).input_cap;
        assert!((c.load_cap(y) - (10.0 + inv_cin + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn transitive_fanin_excludes_self() {
        let mut b = builder();
        let a = b.input("a");
        let x = b.input("x");
        let n1 = b.gate(CellKind::Nand2, "u1", &[a, x]).unwrap();
        let n2 = b.gate(CellKind::Inv, "u2", &[n1]).unwrap();
        b.output(n2);
        let c = b.build().unwrap();
        let mut cone = c.transitive_fanin(n2);
        cone.sort();
        assert_eq!(cone, vec![a, x, n1]);
        assert!(c.transitive_fanin(a).is_empty());
    }

    #[test]
    fn net_by_name_finds_gates_and_inputs() {
        let mut b = builder();
        let a = b.input("a");
        let y = b.gate(CellKind::Inv, "u1", &[a]).unwrap();
        b.output(y);
        assert_eq!(b.net_named("u1"), Some(y));
        let c = b.build().unwrap();
        assert_eq!(c.net_by_name("a"), Some(a));
        assert_eq!(c.net_by_name("u1"), Some(y));
        assert_eq!(c.net_by_name("nope"), None);
    }

    #[test]
    fn stats_display() {
        let mut b = builder();
        let a = b.input("a");
        let y = b.gate(CellKind::Inv, "u1", &[a]).unwrap();
        b.output(y);
        let c = b.build().unwrap();
        let s = c.stats();
        assert_eq!(s.gates, 1);
        assert_eq!(s.inputs, 1);
        assert!(c.to_string().contains("1 gates"));
    }
}
