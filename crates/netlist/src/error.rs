//! Netlist construction and parsing errors.

use std::error::Error;
use std::fmt;

use crate::{GateId, NetId};

/// Error produced while building or validating a [`Circuit`](crate::Circuit).
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// A gate was given a number of inputs different from its cell's arity.
    ArityMismatch {
        /// The offending gate.
        gate: GateId,
        /// Inputs the cell expects.
        expected: usize,
        /// Inputs the gate was given.
        got: usize,
    },
    /// The combinational core contains a cycle through the given gate.
    CombinationalCycle(GateId),
    /// Two gates drive the same net.
    MultipleDrivers(NetId),
    /// A net has no driver and is not a primary input.
    Undriven(NetId),
    /// A coupling capacitor connects a net to itself.
    SelfCoupling(NetId),
    /// A referenced name was never declared.
    UnknownName(String),
    /// A name was declared twice.
    DuplicateName(String),
    /// A numeric parameter was invalid (negative capacitance, NaN, …).
    InvalidParameter {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The circuit has no primary output, so no sink to time.
    NoOutputs,
    /// A parse error in the text netlist format, with 1-based line number.
    Parse {
        /// Line number in the source text.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ArityMismatch { gate, expected, got } => {
                write!(f, "gate {gate} expects {expected} inputs but got {got}")
            }
            NetlistError::CombinationalCycle(g) => {
                write!(f, "combinational cycle through gate {g}")
            }
            NetlistError::MultipleDrivers(n) => write!(f, "net {n} has multiple drivers"),
            NetlistError::Undriven(n) => {
                write!(f, "net {n} has no driver and is not a primary input")
            }
            NetlistError::SelfCoupling(n) => write!(f, "net {n} coupled to itself"),
            NetlistError::UnknownName(s) => write!(f, "unknown name `{s}`"),
            NetlistError::DuplicateName(s) => write!(f, "duplicate name `{s}`"),
            NetlistError::InvalidParameter { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            NetlistError::NoOutputs => write!(f, "circuit has no primary outputs"),
            NetlistError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetlistError::ArityMismatch { gate: GateId::new(2), expected: 2, got: 3 };
        assert!(e.to_string().contains("g2"));
        assert!(e.to_string().contains('3'));
        let p = NetlistError::Parse { line: 7, message: "bad token".into() };
        assert!(p.to_string().contains("line 7"));
    }
}
