//! Gate instances.

use std::fmt;

use crate::{CellKind, GateId, NetId};

/// One placed instance of a standard cell.
///
/// A gate reads its `inputs` nets and drives exactly one `output` net.
/// Electrical parameters live in the [`Library`](crate::Library); the gate
/// only records its [`CellKind`].
/// Fields are public so IR-level tooling (the `dna-lint` verifier, raw
/// deserializers) can construct and inspect nodes directly; a [`Circuit`]
/// never hands out mutable references, so its invariants stay intact.
///
/// [`Circuit`]: crate::Circuit
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Instance name.
    pub name: String,
    /// The cell this gate instantiates.
    pub kind: CellKind,
    /// Input nets in pin order.
    pub inputs: Vec<NetId>,
    /// The net this gate drives.
    pub output: NetId,
}

impl Gate {
    /// Instance name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell this gate instantiates.
    #[must_use]
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Input nets in pin order.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The net this gate drives.
    #[must_use]
    pub fn output(&self) -> NetId {
        self.output
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} `{}`", self.kind, self.name)
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetSource {
    /// The net is a primary input of the design.
    PrimaryInput,
    /// The net is driven by the given gate.
    Gate(GateId),
}

impl NetSource {
    /// The driving gate, if any.
    #[must_use]
    pub fn gate(self) -> Option<GateId> {
        match self {
            NetSource::PrimaryInput => None,
            NetSource::Gate(g) => Some(g),
        }
    }
}

/// A wire in the design.
///
/// Each net has exactly one [`NetSource`], zero or more load gates, a
/// grounded wire capacitance (fF) and an optional 2-D position used by the
/// synthetic generator to assign realistic coupling capacitors.
///
/// As with [`Gate`], fields are public for the benefit of IR-level tooling;
/// a [`Circuit`](crate::Circuit) never exposes nets mutably.
#[derive(Debug, Clone, PartialEq)]
pub struct Net {
    /// Net name.
    pub name: String,
    /// What drives the net.
    pub source: NetSource,
    /// Gates whose inputs connect to this net.
    pub loads: Vec<GateId>,
    /// Grounded wire capacitance in fF.
    pub wire_cap: f64,
    /// Whether the net is a primary output (a timing sink).
    pub is_output: bool,
    /// Placement position, if assigned.
    pub position: Option<(f64, f64)>,
}

impl Net {
    /// Net name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// What drives the net.
    #[must_use]
    pub fn source(&self) -> NetSource {
        self.source
    }

    /// Gates whose inputs connect to this net.
    #[must_use]
    pub fn loads(&self) -> &[GateId] {
        &self.loads
    }

    /// Grounded wire capacitance in fF.
    #[must_use]
    pub fn wire_cap(&self) -> f64 {
        self.wire_cap
    }

    /// Whether the net is a primary output (a timing sink).
    #[must_use]
    pub fn is_output(&self) -> bool {
        self.is_output
    }

    /// Whether the net is a primary input.
    #[must_use]
    pub fn is_input(&self) -> bool {
        matches!(self.source, NetSource::PrimaryInput)
    }

    /// Placement position, if assigned.
    #[must_use]
    pub fn position(&self) -> Option<(f64, f64)> {
        self.position
    }
}

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net `{}`", self.name)
    }
}
