//! Gate-level netlists with RC parasitics and coupling capacitors.
//!
//! This crate is the circuit substrate of the DAC 2007 *"Top-k Aggressors
//! Sets in Delay Noise Analysis"* reproduction:
//!
//! * [`Circuit`] — a validated combinational DAG of [`Gate`]s and [`Net`]s
//!   with grounded wire capacitance and parasitic [`Coupling`] capacitors,
//! * [`CircuitBuilder`] — incremental construction with eager per-call
//!   validation and whole-circuit checks at [`build`](CircuitBuilder::build),
//! * [`Library`] — linear-model standard cells (0.13 µm-flavoured default),
//! * [`generator`] — seeded, placement-aware synthetic circuit generation,
//! * [`suite`] — the paper's i1–i10 benchmark size classes,
//! * [`format`](mod@format) — a plain-text netlist format with parser and writer.
//!
//! Units: resistance **kΩ**, capacitance **fF**, time **ps**.
//!
//! # Example
//!
//! ```
//! use dna_netlist::{CircuitBuilder, Library, CellKind};
//!
//! let mut b = CircuitBuilder::new(Library::cmos013());
//! let a = b.input("a");
//! let bb = b.input("b");
//! let y = b.gate(CellKind::Nand2, "u1", &[a, bb])?;
//! b.output(y);
//! b.coupling(a, y, 5.0)?;
//! let circuit = b.build()?;
//! assert_eq!(circuit.couplings_on(y).len(), 1);
//! # Ok::<(), dna_netlist::NetlistError>(())
//! ```

// Accepted `clippy::pedantic` baseline. The CI_FULL pedantic triage in
// `ci.sh` is non-gating; this allowlist keeps its output limited to new
// findings. Numeric casts between index/size types are pervasive and
// intentional here, exact float comparison is the point of the
// bit-identity contracts, and short or similar names mirror the paper's
// notation.
#![allow(
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::many_single_char_names,
    clippy::missing_panics_doc,
    clippy::similar_names,
    clippy::too_many_lines
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod cell;
mod circuit;
mod coupling;
mod error;
mod gate;
mod ids;
mod library;
mod topo;

pub mod format;
pub mod generator;
pub mod suite;

pub use builder::CircuitBuilder;
pub use cell::{Cell, CellKind, ParseCellKindError};
pub use circuit::{Circuit, CircuitParts, CircuitStats};
pub use coupling::Coupling;
pub use error::NetlistError;
pub use gate::{Gate, Net, NetSource};
pub use ids::{CouplingId, GateId, NetId};
pub use library::Library;
pub use topo::{find_cycle, topo_sort_gates};
