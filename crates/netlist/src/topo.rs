//! Topological ordering of the combinational core.

use crate::{Gate, GateId, NetlistError, NetSource, Net};

/// Computes a topological order of the gates (Kahn's algorithm).
///
/// A gate depends on the driver gate of each of its input nets; primary
/// inputs contribute no dependency. The returned order lists every gate
/// exactly once, drivers before loads.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] naming a gate on a cycle
/// when the netlist is not a DAG.
pub fn topo_sort_gates(gates: &[Gate], nets: &[Net]) -> Result<Vec<GateId>, NetlistError> {
    let n = gates.len();
    let mut indegree = vec![0usize; n];
    let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); n];

    for (gi, gate) in gates.iter().enumerate() {
        for &input in &gate.inputs {
            if let NetSource::Gate(driver) = nets[input.index()].source {
                indegree[gi] += 1;
                fanout[driver.index()].push(gi);
            }
        }
    }

    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    // Reverse so pop() yields ascending indices first — deterministic order.
    ready.reverse();
    let mut order = Vec::with_capacity(n);
    while let Some(gi) = ready.pop() {
        order.push(GateId::new(gi as u32));
        for &succ in &fanout[gi] {
            indegree[succ] -= 1;
            if indegree[succ] == 0 {
                ready.push(succ);
            }
        }
    }

    if order.len() != n {
        let stuck = indegree
            .iter()
            .position(|&d| d > 0)
            .expect("incomplete order implies a positive indegree");
        return Err(NetlistError::CombinationalCycle(GateId::new(stuck as u32)));
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellKind, NetId};

    fn net(name: &str, source: NetSource) -> Net {
        Net {
            name: name.into(),
            source,
            loads: Vec::new(),
            wire_cap: 0.0,
            is_output: false,
            position: None,
        }
    }

    fn gate(name: &str, inputs: &[u32], output: u32) -> Gate {
        Gate {
            name: name.into(),
            kind: CellKind::Buf,
            inputs: inputs.iter().map(|&i| NetId::new(i)).collect(),
            output: NetId::new(output),
        }
    }

    #[test]
    fn chain_orders_drivers_first() {
        // n0 (PI) -> g0 -> n1 -> g1 -> n2, gates declared out of order to
        // prove sorting; g0 is gate index 1 here.
        let gates = vec![gate("g1", &[1], 2), gate("g0", &[0], 1)];
        let nets = vec![
            net("a", NetSource::PrimaryInput),
            net("b", NetSource::Gate(GateId::new(1))),
            net("c", NetSource::Gate(GateId::new(0))),
        ];
        let order = topo_sort_gates(&gates, &nets).unwrap();
        let pos = |g: u32| order.iter().position(|&x| x == GateId::new(g)).unwrap();
        assert!(pos(1) < pos(0), "driver gate must precede its load");
    }

    #[test]
    fn cycle_is_detected() {
        // g0 output n0 feeds g1; g1 output n1 feeds g0.
        let nets = vec![
            net("x", NetSource::Gate(GateId::new(0))),
            net("y", NetSource::Gate(GateId::new(1))),
        ];
        let gates = vec![gate("g0", &[1], 0), gate("g1", &[0], 1)];
        let err = topo_sort_gates(&gates, &nets).unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle(_)));
    }

    #[test]
    fn empty_netlist_is_fine() {
        assert_eq!(topo_sort_gates(&[], &[]).unwrap(), Vec::<GateId>::new());
    }

    #[test]
    fn diamond_respects_all_edges() {
        // PI n0 -> g0 -> n1 -> {g1, g2} -> n2, n3 -> g3(n2,n3) -> n4
        let nets = vec![
            net("pi", NetSource::PrimaryInput),
            net("n1", NetSource::Gate(GateId::new(0))),
            net("n2", NetSource::Gate(GateId::new(1))),
            net("n3", NetSource::Gate(GateId::new(2))),
            net("n4", NetSource::Gate(GateId::new(3))),
        ];
        let gates = vec![
            gate("g0", &[0], 1),
            gate("g1", &[1], 2),
            gate("g2", &[1], 3),
            Gate {
                name: "g3".into(),
                kind: CellKind::Nand2,
                inputs: vec![NetId::new(2), NetId::new(3)],
                output: NetId::new(4),
            },
        ];
        let order = topo_sort_gates(&gates, &nets).unwrap();
        let pos = |g: u32| order.iter().position(|&x| x == GateId::new(g)).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }
}
