//! Topological ordering of the combinational core.

use crate::{Gate, GateId, Net, NetSource, NetlistError};

/// Computes a topological order of the gates (Kahn's algorithm).
///
/// A gate depends on the driver gate of each of its input nets; primary
/// inputs contribute no dependency. The returned order lists every gate
/// exactly once, drivers before loads.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] naming a gate on a cycle
/// when the netlist is not a DAG.
pub fn topo_sort_gates(gates: &[Gate], nets: &[Net]) -> Result<Vec<GateId>, NetlistError> {
    let n = gates.len();
    let mut indegree = vec![0usize; n];
    let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); n];

    for (gi, gate) in gates.iter().enumerate() {
        for &input in &gate.inputs {
            if let NetSource::Gate(driver) = nets[input.index()].source {
                indegree[gi] += 1;
                fanout[driver.index()].push(gi);
            }
        }
    }

    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    // Reverse so pop() yields ascending indices first — deterministic order.
    ready.reverse();
    let mut order = Vec::with_capacity(n);
    while let Some(gi) = ready.pop() {
        order.push(GateId::new(gi as u32));
        for &succ in &fanout[gi] {
            indegree[succ] -= 1;
            if indegree[succ] == 0 {
                ready.push(succ);
            }
        }
    }

    if order.len() != n {
        let stuck = indegree
            .iter()
            .position(|&d| d > 0)
            .expect("incomplete order implies a positive indegree");
        return Err(NetlistError::CombinationalCycle(GateId::new(stuck as u32)));
    }
    Ok(order)
}

/// Finds one combinational cycle and returns it in full, drivers-to-loads,
/// with the first gate repeated at the end (`g0 → g1 → … → g0`).
///
/// [`topo_sort_gates`] names only a single stuck gate; diagnostics that
/// want to show the user the whole loop (the lint rule `L013`) use this.
/// Returns `None` when the gate graph is acyclic. Ids referenced by gate
/// inputs must be in range for `nets`, but net sources may name any gate —
/// out-of-range driver ids are ignored (they are a different corruption,
/// reported by the referential-integrity pass).
#[must_use]
pub fn find_cycle(gates: &[Gate], nets: &[Net]) -> Option<Vec<GateId>> {
    let n = gates.len();
    // Gate-to-gate dependency edges: gate -> driver of each input net.
    let preds = |gi: usize| {
        gates[gi].inputs.iter().filter_map(|input| {
            let net = nets.get(input.index())?;
            match net.source {
                NetSource::Gate(driver) if driver.index() < n => Some(driver.index()),
                _ => None,
            }
        })
    };

    // Iterative DFS with colors: 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; n];
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        // Stack of (gate, whether its predecessors were already pushed).
        let mut stack = vec![(start, false)];
        // Path of gray gates, for cycle extraction.
        let mut path: Vec<usize> = Vec::new();
        while let Some(&mut (gi, ref mut expanded)) = stack.last_mut() {
            if *expanded {
                stack.pop();
                color[gi] = 2;
                path.pop();
                continue;
            }
            if color[gi] != 0 {
                // Pushed twice while white and already handled via the
                // other entry.
                stack.pop();
                continue;
            }
            *expanded = true;
            color[gi] = 1;
            path.push(gi);
            for p in preds(gi) {
                match color[p] {
                    0 => stack.push((p, false)),
                    1 => {
                        // Found a back edge gi -> p; the cycle is the path
                        // suffix from p onward, plus gi's edge back to p.
                        let at = path
                            .iter()
                            .position(|&x| x == p)
                            .expect("gray gate must be on the current path");
                        // path[at..] lists loads-to-drivers (each gate is
                        // followed by one of its predecessors); reverse to
                        // report drivers-to-loads, then close the loop via
                        // the back edge `p drives gi`.
                        let mut cycle: Vec<GateId> =
                            path[at..].iter().rev().map(|&x| GateId::new(x as u32)).collect();
                        cycle.push(cycle[0]);
                        return Some(cycle);
                    }
                    _ => {}
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellKind, NetId};

    fn net(name: &str, source: NetSource) -> Net {
        Net {
            name: name.into(),
            source,
            loads: Vec::new(),
            wire_cap: 0.0,
            is_output: false,
            position: None,
        }
    }

    fn gate(name: &str, inputs: &[u32], output: u32) -> Gate {
        Gate {
            name: name.into(),
            kind: CellKind::Buf,
            inputs: inputs.iter().map(|&i| NetId::new(i)).collect(),
            output: NetId::new(output),
        }
    }

    #[test]
    fn chain_orders_drivers_first() {
        // n0 (PI) -> g0 -> n1 -> g1 -> n2, gates declared out of order to
        // prove sorting; g0 is gate index 1 here.
        let gates = vec![gate("g1", &[1], 2), gate("g0", &[0], 1)];
        let nets = vec![
            net("a", NetSource::PrimaryInput),
            net("b", NetSource::Gate(GateId::new(1))),
            net("c", NetSource::Gate(GateId::new(0))),
        ];
        let order = topo_sort_gates(&gates, &nets).unwrap();
        let pos = |g: u32| order.iter().position(|&x| x == GateId::new(g)).unwrap();
        assert!(pos(1) < pos(0), "driver gate must precede its load");
    }

    #[test]
    fn cycle_is_detected() {
        // g0 output n0 feeds g1; g1 output n1 feeds g0.
        let nets = vec![
            net("x", NetSource::Gate(GateId::new(0))),
            net("y", NetSource::Gate(GateId::new(1))),
        ];
        let gates = vec![gate("g0", &[1], 0), gate("g1", &[0], 1)];
        let err = topo_sort_gates(&gates, &nets).unwrap_err();
        assert!(matches!(err, NetlistError::CombinationalCycle(_)));
    }

    #[test]
    fn find_cycle_names_the_full_loop() {
        // Three-gate ring: g0 -> n0 -> g1 -> n1 -> g2 -> n2 -> g0.
        let nets = vec![
            net("n0", NetSource::Gate(GateId::new(0))),
            net("n1", NetSource::Gate(GateId::new(1))),
            net("n2", NetSource::Gate(GateId::new(2))),
        ];
        let gates = vec![gate("g0", &[2], 0), gate("g1", &[0], 1), gate("g2", &[1], 2)];
        let cycle = find_cycle(&gates, &nets).expect("ring must be detected");
        // Full loop: first gate repeated at the end, every ring member named.
        assert_eq!(cycle.first(), cycle.last());
        assert_eq!(cycle.len(), 4);
        let members: Vec<u32> = cycle[..3].iter().map(|g| g.index() as u32).collect();
        for g in 0..3 {
            assert!(members.contains(&g), "gate {g} missing from reported cycle");
        }
        // Consecutive entries must be actual dependency edges
        // (driver feeds the next gate).
        for w in cycle.windows(2) {
            let (driver, load) = (w[0], w[1]);
            let feeds = gates[load.index()]
                .inputs
                .iter()
                .any(|&i| matches!(nets[i.index()].source, NetSource::Gate(d) if d == driver));
            assert!(feeds, "{driver:?} does not feed {load:?}");
        }
    }

    #[test]
    fn find_cycle_none_on_dag() {
        let gates = vec![gate("g1", &[1], 2), gate("g0", &[0], 1)];
        let nets = vec![
            net("a", NetSource::PrimaryInput),
            net("b", NetSource::Gate(GateId::new(1))),
            net("c", NetSource::Gate(GateId::new(0))),
        ];
        assert_eq!(find_cycle(&gates, &nets), None);
    }

    #[test]
    fn find_cycle_self_loop() {
        // g0 reads its own output.
        let nets = vec![net("x", NetSource::Gate(GateId::new(0)))];
        let gates = vec![gate("g0", &[0], 0)];
        let cycle = find_cycle(&gates, &nets).unwrap();
        assert_eq!(cycle, vec![GateId::new(0), GateId::new(0)]);
    }

    #[test]
    fn find_cycle_ignores_out_of_range_driver_ids() {
        // Net claims a driver gate that does not exist; not a cycle.
        let nets = vec![net("x", NetSource::Gate(GateId::new(7)))];
        let gates = vec![gate("g0", &[0], 0)];
        assert_eq!(find_cycle(&gates, &nets), None);
    }

    #[test]
    fn empty_netlist_is_fine() {
        assert_eq!(topo_sort_gates(&[], &[]).unwrap(), Vec::<GateId>::new());
    }

    #[test]
    fn diamond_respects_all_edges() {
        // PI n0 -> g0 -> n1 -> {g1, g2} -> n2, n3 -> g3(n2,n3) -> n4
        let nets = vec![
            net("pi", NetSource::PrimaryInput),
            net("n1", NetSource::Gate(GateId::new(0))),
            net("n2", NetSource::Gate(GateId::new(1))),
            net("n3", NetSource::Gate(GateId::new(2))),
            net("n4", NetSource::Gate(GateId::new(3))),
        ];
        let gates = vec![
            gate("g0", &[0], 1),
            gate("g1", &[1], 2),
            gate("g2", &[1], 3),
            Gate {
                name: "g3".into(),
                kind: CellKind::Nand2,
                inputs: vec![NetId::new(2), NetId::new(3)],
                output: NetId::new(4),
            },
        ];
        let order = topo_sort_gates(&gates, &nets).unwrap();
        let pos = |g: u32| order.iter().position(|&x| x == GateId::new(g)).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(0) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(3));
    }
}
