//! A line-oriented text netlist format (`.ckt`).
//!
//! The format exists so circuits can be saved, diffed and shared between
//! runs of the benchmark harness. One statement per line:
//!
//! ```text
//! # comment
//! input  <name>
//! gate   <cell> <name> <in1> [<in2> …]
//! output <net>
//! wire   <net> <cap_ff>
//! pos    <net> <x> <y>
//! coupling <netA> <netB> <cap_ff>
//! ```
//!
//! Statements may appear in any order as long as every referenced name has
//! been declared on an earlier line.

use std::str::FromStr;

use crate::{CellKind, Circuit, CircuitBuilder, Library, NetId, NetlistError};

/// Serializes a circuit to the text format.
///
/// The output round-trips through [`parse`] up to net/gate numbering.
///
/// # Example
///
/// ```
/// use dna_netlist::{format, CircuitBuilder, Library, CellKind};
///
/// let mut b = CircuitBuilder::new(Library::cmos013());
/// let a = b.input("a");
/// let y = b.gate(CellKind::Inv, "u1", &[a])?;
/// b.output(y);
/// let circuit = b.build()?;
///
/// let text = format::write(&circuit);
/// let back = format::parse(&text)?;
/// assert_eq!(back.num_gates(), circuit.num_gates());
/// # Ok::<(), dna_netlist::NetlistError>(())
/// ```
#[must_use]
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("# topk-aggressors circuit\n");
    for n in circuit.net_ids() {
        if circuit.net(n).is_input() {
            out.push_str(&format!("input {}\n", circuit.net(n).name()));
        }
    }
    for &g in circuit.gates_topological() {
        let gate = circuit.gate(g);
        out.push_str(&format!("gate {} {}", gate.kind(), gate.name()));
        for &i in gate.inputs() {
            out.push(' ');
            out.push_str(circuit.net(i).name());
        }
        out.push('\n');
    }
    for n in circuit.net_ids() {
        let net = circuit.net(n);
        out.push_str(&format!("wire {} {}\n", net.name(), net.wire_cap()));
        if let Some((x, y)) = net.position() {
            out.push_str(&format!("pos {} {x} {y}\n", net.name()));
        }
        if net.is_output() {
            out.push_str(&format!("output {}\n", net.name()));
        }
    }
    for c in circuit.coupling_ids() {
        let cc = circuit.coupling(c);
        out.push_str(&format!(
            "coupling {} {} {}\n",
            circuit.net(cc.a()).name(),
            circuit.net(cc.b()).name(),
            cc.cap()
        ));
    }
    out
}

/// Parses the text format into a validated [`Circuit`].
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] (with a 1-based line number) for
/// malformed lines, plus any builder validation error.
pub fn parse(text: &str) -> Result<Circuit, NetlistError> {
    let mut builder = CircuitBuilder::new(Library::cmos013());

    let err =
        |line: usize, message: &str| NetlistError::Parse { line, message: message.to_owned() };
    let lookup = |builder: &CircuitBuilder, line: usize, name: &str| {
        builder.net_named(name).ok_or_else(|| err(line, &format!("unknown net `{name}`")))
    };
    let number = |line: usize, tok: &str, what: &str| {
        f64::from_str(tok).map_err(|_| err(line, &format!("invalid {what} `{tok}`")))
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "input" => {
                if toks.len() != 2 {
                    return Err(err(line_no, "expected `input <name>`"));
                }
                builder.try_input(toks[1])?;
            }
            "gate" => {
                if toks.len() < 4 {
                    return Err(err(line_no, "expected `gate <cell> <name> <inputs…>`"));
                }
                let kind = CellKind::from_str(toks[1]).map_err(|e| err(line_no, &e.to_string()))?;
                let inputs = toks[3..]
                    .iter()
                    .map(|t| lookup(&builder, line_no, t))
                    .collect::<Result<Vec<NetId>, _>>()?;
                builder.gate(kind, toks[2], &inputs)?;
            }
            "output" => {
                if toks.len() != 2 {
                    return Err(err(line_no, "expected `output <net>`"));
                }
                let n = lookup(&builder, line_no, toks[1])?;
                builder.output(n);
            }
            "wire" => {
                if toks.len() != 3 {
                    return Err(err(line_no, "expected `wire <net> <cap_ff>`"));
                }
                let n = lookup(&builder, line_no, toks[1])?;
                builder.wire_cap(n, number(line_no, toks[2], "capacitance")?)?;
            }
            "pos" => {
                if toks.len() != 4 {
                    return Err(err(line_no, "expected `pos <net> <x> <y>`"));
                }
                let n = lookup(&builder, line_no, toks[1])?;
                let x = number(line_no, toks[2], "coordinate")?;
                let y = number(line_no, toks[3], "coordinate")?;
                builder.position(n, x, y);
            }
            "coupling" => {
                if toks.len() != 4 {
                    return Err(err(line_no, "expected `coupling <netA> <netB> <cap_ff>`"));
                }
                let a = lookup(&builder, line_no, toks[1])?;
                let b = lookup(&builder, line_no, toks[2])?;
                builder.coupling(a, b, number(line_no, toks[3], "capacitance")?)?;
            }
            other => return Err(err(line_no, &format!("unknown statement `{other}`"))),
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    #[test]
    fn parse_simple_circuit() {
        let text = "\
# tiny
input a
input b
gate nand2 u1 a b
output u1
wire u1 7.5
coupling a u1 3.0
";
        let c = parse(text).unwrap();
        assert_eq!(c.num_gates(), 1);
        assert_eq!(c.num_couplings(), 1);
        let u1 = c.net_by_name("u1").unwrap();
        assert_eq!(c.net(u1).wire_cap(), 7.5);
        assert!(c.net(u1).is_output());
    }

    #[test]
    fn round_trip_preserves_structure() {
        let orig = generate(&GeneratorConfig::new(20, 40).with_seed(5)).unwrap();
        let text = write(&orig);
        let back = parse(&text).unwrap();
        assert_eq!(back.num_gates(), orig.num_gates());
        assert_eq!(back.num_nets(), orig.num_nets());
        assert_eq!(back.num_couplings(), orig.num_couplings());
        assert_eq!(back.primary_outputs().len(), orig.primary_outputs().len());
        // Re-serialization emits the same statements (gate order may differ
        // because parsing renumbers gates before re-deriving a topological
        // order).
        let sorted = |s: &str| {
            let mut lines: Vec<&str> = s.lines().collect();
            lines.sort_unstable();
            lines.join("\n")
        };
        assert_eq!(sorted(&text), sorted(&write(&back)));
    }

    #[test]
    fn unknown_net_reports_line() {
        let e = parse("input a\ngate inv u1 bogus\noutput u1\n").unwrap_err();
        match e {
            NetlistError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("bogus"));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse("input\n").is_err());
        assert!(parse("frobnicate x\n").is_err());
        assert!(parse("input a\nwire a abc\n").is_err());
        assert!(parse("input a\ngate mystery u1 a\n").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let c = parse("\n# hello\ninput a\n\ngate inv u1 a\noutput u1\n").unwrap();
        assert_eq!(c.num_gates(), 1);
    }
}
