//! The i1–i10 benchmark suite.
//!
//! The paper evaluates on ten synthesized-and-routed industrial blocks
//! named `i1` … `i10`. Those netlists are not public, so this module
//! regenerates circuits of the **same size** (gate count and coupling-cap
//! count from Table 2) with the placement-aware synthetic
//! [`generator`](crate::generator). Net counts differ slightly: the paper
//! counts routed nets, we count all logical nets (gate outputs plus primary
//! inputs).

use std::fmt;

use crate::generator::{generate, GeneratorConfig};
use crate::{Circuit, NetlistError};

/// Size specification of one paper benchmark (from Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkSpec {
    /// Benchmark name (`"i1"` … `"i10"`).
    pub name: &'static str,
    /// Gate instances (paper column *# gates*).
    pub gates: usize,
    /// Routed nets reported by the paper (informational; our logical net
    /// count is `gates + inputs`).
    pub paper_nets: usize,
    /// Coupling capacitors (paper column *# coupling caps*).
    pub couplings: usize,
}

impl fmt::Display for BenchmarkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} gates, {} coupling caps", self.name, self.gates, self.couplings)
    }
}

/// The ten benchmark specifications of the paper's Table 2.
pub const SPECS: [BenchmarkSpec; 10] = [
    BenchmarkSpec { name: "i1", gates: 59, paper_nets: 46, couplings: 232 },
    BenchmarkSpec { name: "i2", gates: 222, paper_nets: 221, couplings: 706 },
    BenchmarkSpec { name: "i3", gates: 132, paper_nets: 126, couplings: 551 },
    BenchmarkSpec { name: "i4", gates: 236, paper_nets: 230, couplings: 1181 },
    BenchmarkSpec { name: "i5", gates: 204, paper_nets: 138, couplings: 1835 },
    BenchmarkSpec { name: "i6", gates: 735, paper_nets: 668, couplings: 7298 },
    BenchmarkSpec { name: "i7", gates: 937, paper_nets: 870, couplings: 9605 },
    BenchmarkSpec { name: "i8", gates: 1609, paper_nets: 1528, couplings: 10235 },
    BenchmarkSpec { name: "i9", gates: 1018, paper_nets: 955, couplings: 14140 },
    BenchmarkSpec { name: "i10", gates: 3379, paper_nets: 3155, couplings: 18318 },
];

/// Looks up a benchmark specification by name.
#[must_use]
pub fn spec(name: &str) -> Option<BenchmarkSpec> {
    SPECS.iter().copied().find(|s| s.name == name)
}

/// All benchmark names, in paper order.
#[must_use]
pub fn names() -> Vec<&'static str> {
    SPECS.iter().map(|s| s.name).collect()
}

/// Generates one benchmark circuit by name.
///
/// The `seed` makes the circuit reproducible; different seeds give
/// different instances of the same size class.
///
/// # Errors
///
/// Returns [`NetlistError::UnknownName`] for an unrecognized benchmark
/// name.
///
/// # Example
///
/// ```
/// use dna_netlist::suite;
///
/// let i1 = suite::benchmark("i1", 42)?;
/// assert_eq!(i1.num_gates(), 59);
/// assert_eq!(i1.num_couplings(), 232);
/// # Ok::<(), dna_netlist::NetlistError>(())
/// ```
pub fn benchmark(name: &str, seed: u64) -> Result<Circuit, NetlistError> {
    let spec = spec(name).ok_or_else(|| NetlistError::UnknownName(name.to_owned()))?;
    generate(&GeneratorConfig::new(spec.gates, spec.couplings).with_seed(seed))
}

/// Generates the full ten-circuit suite with a shared seed.
///
/// # Errors
///
/// Propagates generator errors (none occur for the fixed specifications).
pub fn full_suite(seed: u64) -> Result<Vec<(BenchmarkSpec, Circuit)>, NetlistError> {
    SPECS.iter().map(|&s| benchmark(s.name, seed).map(|c| (s, c))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_paper_table_2() {
        assert_eq!(SPECS.len(), 10);
        let i10 = spec("i10").unwrap();
        assert_eq!(i10.gates, 3379);
        assert_eq!(i10.couplings, 18318);
        assert_eq!(spec("i0"), None);
    }

    #[test]
    fn benchmark_generates_exact_sizes() {
        for name in ["i1", "i3"] {
            let s = spec(name).unwrap();
            let c = benchmark(name, 1).unwrap();
            assert_eq!(c.num_gates(), s.gates, "{name} gate count");
            assert_eq!(c.num_couplings(), s.couplings, "{name} coupling count");
        }
    }

    #[test]
    fn unknown_name_errors() {
        assert!(matches!(benchmark("bogus", 0), Err(NetlistError::UnknownName(_))));
    }

    #[test]
    fn names_in_order() {
        assert_eq!(names()[0], "i1");
        assert_eq!(names()[9], "i10");
    }
}
