//! The frozen, validated circuit.

use std::fmt;

use crate::{Cell, Coupling, CouplingId, Gate, GateId, Library, Net, NetId, NetSource};

/// A validated, immutable gate-level circuit with parasitics.
///
/// Produced by [`CircuitBuilder`](crate::CircuitBuilder) or the synthetic
/// [`generator`](crate::generator); guarantees:
///
/// * every net has exactly one source (gate or primary input),
/// * the gate graph is acyclic, with a precomputed topological order,
/// * at least one net is marked as a primary output,
/// * all capacitances are finite and non-negative.
///
/// # Example
///
/// ```
/// use dna_netlist::{CircuitBuilder, Library, CellKind};
///
/// let mut b = CircuitBuilder::new(Library::cmos013());
/// let a = b.input("a");
/// let y = b.gate(CellKind::Inv, "u1", &[a])?;
/// b.output(y);
/// let circuit = b.build()?;
/// assert_eq!(circuit.num_gates(), 1);
/// assert_eq!(circuit.primary_inputs().count(), 1);
/// # Ok::<(), dna_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    pub(crate) library: Library,
    pub(crate) gates: Vec<Gate>,
    pub(crate) nets: Vec<Net>,
    pub(crate) couplings: Vec<Coupling>,
    pub(crate) gate_topo: Vec<GateId>,
    pub(crate) net_topo: Vec<NetId>,
    pub(crate) couplings_by_net: Vec<Vec<CouplingId>>,
    pub(crate) outputs: Vec<NetId>,
}

/// The raw constituents of a [`Circuit`], with every invariant dropped.
///
/// Obtained from [`Circuit::into_parts`] and reassembled with
/// [`Circuit::from_parts_unchecked`]. This is the escape hatch used by the
/// `dna-lint` verifier's test corpus: builder-validated circuits cannot
/// express dangling ids, cycles or corrupted caches, so deliberately broken
/// inputs are produced by taking a valid circuit apart, mutating the parts
/// and reassembling without re-validation.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitParts {
    /// The cell library.
    pub library: Library,
    /// Gate instances, indexed by [`GateId`].
    pub gates: Vec<Gate>,
    /// Nets, indexed by [`NetId`].
    pub nets: Vec<Net>,
    /// Coupling capacitors, indexed by [`CouplingId`].
    pub couplings: Vec<Coupling>,
    /// Cached topological order of gates.
    pub gate_topo: Vec<GateId>,
    /// Cached topological order of nets.
    pub net_topo: Vec<NetId>,
    /// Cached per-net incident coupling lists, indexed by net.
    pub couplings_by_net: Vec<Vec<CouplingId>>,
    /// Primary output nets.
    pub outputs: Vec<NetId>,
}

impl Circuit {
    /// Decomposes the circuit into its raw parts.
    #[must_use]
    pub fn into_parts(self) -> CircuitParts {
        CircuitParts {
            library: self.library,
            gates: self.gates,
            nets: self.nets,
            couplings: self.couplings,
            gate_topo: self.gate_topo,
            net_topo: self.net_topo,
            couplings_by_net: self.couplings_by_net,
            outputs: self.outputs,
        }
    }

    /// Reassembles a circuit from raw parts **without any validation**.
    ///
    /// The result may violate every invariant the builder guarantees;
    /// analyses run on such a circuit may panic or return nonsense. Intended
    /// only for IR-level tooling — in particular the `dna-lint` verifier's
    /// known-bad test corpus. Use [`CircuitBuilder`](crate::CircuitBuilder)
    /// for anything else.
    #[must_use]
    pub fn from_parts_unchecked(parts: CircuitParts) -> Self {
        Self {
            library: parts.library,
            gates: parts.gates,
            nets: parts.nets,
            couplings: parts.couplings,
            gate_topo: parts.gate_topo,
            net_topo: parts.net_topo,
            couplings_by_net: parts.couplings_by_net,
            outputs: parts.outputs,
        }
    }

    /// The cell library the circuit was mapped to.
    #[must_use]
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// Number of gate instances.
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of coupling capacitors.
    #[must_use]
    pub fn num_couplings(&self) -> usize {
        self.couplings.len()
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// The coupling capacitor with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn coupling(&self, id: CouplingId) -> &Coupling {
        &self.couplings[id.index()]
    }

    /// Gates in topological order (drivers before loads).
    #[must_use]
    pub fn gates_topological(&self) -> &[GateId] {
        &self.gate_topo
    }

    /// Nets in topological order: primary inputs first, then gate outputs
    /// in gate topological order.
    #[must_use]
    pub fn nets_topological(&self) -> &[NetId] {
        &self.net_topo
    }

    /// Nets partitioned into dependency levels: primary inputs are level 0
    /// and a gate-output net sits one level above the deepest of its
    /// driver's input nets.
    ///
    /// Within a level no net is in another's fanin cone, so per-net work
    /// that reads only strict-fanin results can run concurrently across a
    /// level. (The top-k sweep used levels as its synchronization
    /// structure before moving to per-victim dependency tracking; the
    /// partition remains useful for analysis and display.) Levels are
    /// emitted in increasing order and each level lists
    /// its nets in [`nets_topological`](Self::nets_topological) order, so
    /// flattening the levels is itself a valid topological order.
    #[must_use]
    pub fn nets_by_level(&self) -> Vec<Vec<NetId>> {
        let mut level = vec![0usize; self.nets.len()];
        let mut max_level = 0usize;
        // net_topo lists drivers before loads, so input levels are final
        // by the time their gate's output net is visited.
        for &n in &self.net_topo {
            if let NetSource::Gate(g) = self.net(n).source() {
                let l = self
                    .gate(g)
                    .inputs()
                    .iter()
                    .map(|&input| level[input.index()])
                    .max()
                    .unwrap_or(0)
                    + 1;
                level[n.index()] = l;
                max_level = max_level.max(l);
            }
        }
        let mut levels: Vec<Vec<NetId>> = vec![Vec::new(); max_level + 1];
        for &n in &self.net_topo {
            levels[level[n.index()]].push(n);
        }
        levels
    }

    /// Iterator over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len() as u32).map(NetId::new)
    }

    /// Iterator over all gate ids.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.gates.len() as u32).map(GateId::new)
    }

    /// Iterator over all coupling-capacitor ids.
    pub fn coupling_ids(&self) -> impl Iterator<Item = CouplingId> + '_ {
        (0..self.couplings.len() as u32).map(CouplingId::new)
    }

    /// Primary input nets.
    pub fn primary_inputs(&self) -> impl Iterator<Item = NetId> + '_ {
        self.net_ids().filter(|&n| self.net(n).is_input())
    }

    /// Primary output nets (the timing sinks).
    #[must_use]
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Coupling capacitors incident to `net`.
    #[must_use]
    pub fn couplings_on(&self, net: NetId) -> &[CouplingId] {
        &self.couplings_by_net[net.index()]
    }

    /// The characterized cell driving `net`, or `None` for primary inputs.
    #[must_use]
    pub fn driver_cell(&self, net: NetId) -> Option<&Cell> {
        match self.net(net).source() {
            NetSource::PrimaryInput => None,
            NetSource::Gate(g) => Some(self.library.cell(self.gate(g).kind())),
        }
    }

    /// Total grounded load capacitance seen by the driver of `net`:
    /// wire capacitance plus the input capacitance of every load pin plus
    /// all incident coupling capacitance (grounded-aggressor approximation
    /// for nominal delay).
    #[must_use]
    pub fn load_cap(&self, net: NetId) -> f64 {
        let n = self.net(net);
        let pin_caps: f64 =
            n.loads().iter().map(|&g| self.library.cell(self.gate(g).kind()).input_cap).sum();
        let coupling_caps: f64 =
            self.couplings_on(net).iter().map(|&c| self.coupling(c).cap()).sum();
        n.wire_cap() + pin_caps + coupling_caps
    }

    /// Every net in the transitive fanin cone of `net`, **excluding** `net`
    /// itself, in no particular order.
    ///
    /// The paper's indirect (secondary, tertiary, …) aggressors are the
    /// aggressors coupled to this cone (§1, Fig. 1).
    #[must_use]
    pub fn transitive_fanin(&self, net: NetId) -> Vec<NetId> {
        let mut seen = vec![false; self.nets.len()];
        let mut stack = vec![net];
        let mut cone = Vec::new();
        seen[net.index()] = true;
        while let Some(n) = stack.pop() {
            if let NetSource::Gate(g) = self.net(n).source() {
                for &input in self.gate(g).inputs() {
                    if !seen[input.index()] {
                        seen[input.index()] = true;
                        cone.push(input);
                        stack.push(input);
                    }
                }
            }
        }
        cone
    }

    /// Like [`transitive_fanin`](Self::transitive_fanin) but only
    /// traversing `depth` gate levels upstream.
    ///
    /// Noise iterations converge in a handful of rounds (industrial tools
    /// report 3–4), so indirect aggressors beyond a few logic levels
    /// rarely matter; a depth-limited cone keeps widener searches local.
    #[must_use]
    pub fn transitive_fanin_depth(&self, net: NetId, depth: usize) -> Vec<NetId> {
        let mut seen = vec![false; self.nets.len()];
        let mut frontier = vec![net];
        let mut cone = Vec::new();
        seen[net.index()] = true;
        for _ in 0..depth {
            let mut next = Vec::new();
            for n in frontier {
                if let NetSource::Gate(g) = self.net(n).source() {
                    for &input in self.gate(g).inputs() {
                        if !seen[input.index()] {
                            seen[input.index()] = true;
                            cone.push(input);
                            next.push(input);
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        cone
    }

    /// Every net in the transitive fanout cone of `net`, **excluding**
    /// `net` itself, in no particular order: the output nets of every gate
    /// reachable downstream through load pins.
    ///
    /// The dual of [`transitive_fanin`](Self::transitive_fanin); what-if
    /// re-analysis invalidates this cone when a net's noise changes.
    #[must_use]
    pub fn transitive_fanout(&self, net: NetId) -> Vec<NetId> {
        let mut seen = vec![false; self.nets.len()];
        let mut stack = vec![net];
        let mut cone = Vec::new();
        seen[net.index()] = true;
        while let Some(n) = stack.pop() {
            for &g in self.net(n).loads() {
                let out = self.gate(g).output();
                if !seen[out.index()] {
                    seen[out.index()] = true;
                    cone.push(out);
                    stack.push(out);
                }
            }
        }
        cone
    }

    /// The dirty-set closure for incremental re-analysis: every net whose
    /// delay-noise state can change when the nets in `seeds` change,
    /// returned as a per-net flag vector (seeds included).
    ///
    /// Dirtiness propagates along two edge kinds until a fixpoint:
    ///
    /// * **gate-fanout edges** — a net's arrival feeds every gate it
    ///   loads, so those gates' output nets are dirty;
    /// * **coupling-adjacency edges** — a dirty net may inject different
    ///   noise through each incident coupling capacitor, so every net
    ///   coupled to it is dirty.
    ///
    /// Coupling edges point "backwards" relative to the topological order
    /// (an aggressor deep in the circuit can dirty a victim near the
    /// inputs), so a single topological pass is not enough — this runs a
    /// worklist to the fixpoint. Adjacency is taken from the full circuit,
    /// ignoring any coupling enable/disable state: a superset of the truly
    /// affected nets is conservative (extra nets merely get recomputed).
    #[must_use]
    pub fn dirty_closure(&self, seeds: &[NetId]) -> Vec<bool> {
        self.dirty_closure_filtered(seeds, |_| true)
    }

    /// [`Self::dirty_closure`] with a predicate restricting which coupling
    /// capacitors may propagate dirtiness.
    ///
    /// Gate-fanout edges always propagate; a coupling-adjacency edge
    /// through capacitor `cc` propagates only when `propagates(cc)` is
    /// true. The canonical use is mask-aware incremental re-analysis: a
    /// coupling disabled in *both* the before and after masks injects no
    /// noise in either world, so it cannot carry a state difference and
    /// its adjacency edge can be dropped (the flipped couplings' own
    /// endpoints must be in `seeds` — flipping is itself a difference).
    #[must_use]
    pub fn dirty_closure_filtered<F>(&self, seeds: &[NetId], propagates: F) -> Vec<bool>
    where
        F: Fn(CouplingId) -> bool,
    {
        let mut dirty = vec![false; self.nets.len()];
        self.dirty_closure_extend(&mut dirty, seeds, propagates);
        dirty
    }

    /// Extends an existing dirty closure in place with extra `seeds`.
    ///
    /// `dirty` must be a fixpoint of some *restriction* of `propagates`
    /// (fewer allowed couplings) whose newly allowed couplings all have
    /// both endpoints in `seeds`, or the all-false vector. Under that
    /// contract the result is exactly the from-scratch closure over the
    /// union of the original seeds and `seeds` with the wider predicate:
    /// the worklist is monotone, and a path through a newly allowed
    /// coupling restarts at one of its endpoints, which is seeded here.
    /// This is what lets a batch of what-if scenarios share the closure of
    /// a common changed-coupling prefix and pay only for the suffix.
    pub fn dirty_closure_extend<F>(&self, dirty: &mut [bool], seeds: &[NetId], propagates: F)
    where
        F: Fn(CouplingId) -> bool,
    {
        debug_assert_eq!(dirty.len(), self.nets.len());
        let mut work: Vec<NetId> = Vec::with_capacity(seeds.len());
        for &s in seeds {
            if !dirty[s.index()] {
                dirty[s.index()] = true;
                work.push(s);
            }
        }
        while let Some(n) = work.pop() {
            for &g in self.net(n).loads() {
                let out = self.gate(g).output();
                if !dirty[out.index()] {
                    dirty[out.index()] = true;
                    work.push(out);
                }
            }
            for &cc in self.couplings_on(n) {
                if !propagates(cc) {
                    continue;
                }
                let Some(other) = self.coupling(cc).other(n) else { continue };
                if !dirty[other.index()] {
                    dirty[other.index()] = true;
                    work.push(other);
                }
            }
        }
    }

    /// Looks up a net by name (linear scan; intended for tests and small
    /// examples, not hot paths).
    #[must_use]
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.net_ids().find(|&n| self.net(n).name() == name)
    }

    /// One-line summary of the circuit's size.
    #[must_use]
    pub fn stats(&self) -> CircuitStats {
        CircuitStats {
            gates: self.num_gates(),
            nets: self.num_nets(),
            couplings: self.num_couplings(),
            inputs: self.primary_inputs().count(),
            outputs: self.outputs.len(),
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.stats())
    }
}

/// Size summary of a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitStats {
    /// Gate instances.
    pub gates: usize,
    /// Nets.
    pub nets: usize,
    /// Coupling capacitors.
    pub couplings: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates, {} nets, {} coupling caps, {} inputs, {} outputs",
            self.gates, self.nets, self.couplings, self.inputs, self.outputs
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::{CellKind, CircuitBuilder, Library, NetSource};

    #[test]
    fn nets_by_level_orders_diamond() {
        // a -> u1 -> n1 -> {u2, u3} -> n2, n3 -> u4 -> n4
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let n1 = b.gate(CellKind::Inv, "u1", &[a]).unwrap();
        let n2 = b.gate(CellKind::Buf, "u2", &[n1]).unwrap();
        let n3 = b.gate(CellKind::Inv, "u3", &[n1]).unwrap();
        let n4 = b.gate(CellKind::Nand2, "u4", &[n2, n3]).unwrap();
        b.output(n4);
        let c = b.build().unwrap();

        let levels = c.nets_by_level();
        assert_eq!(levels.len(), 4);
        assert_eq!(levels[0], vec![a]);
        assert_eq!(levels[1], vec![n1]);
        // The parallel siblings share a level, listed in nets_topological
        // relative order.
        let expect: Vec<_> =
            c.nets_topological().iter().copied().filter(|&n| n == n2 || n == n3).collect();
        assert_eq!(levels[2], expect);
        assert_eq!(levels[3], vec![n4]);
    }

    #[test]
    fn nets_by_level_flattens_to_topological_order() {
        let c = crate::suite::benchmark("i1", 7).unwrap();
        let levels = c.nets_by_level();
        let flat: Vec<_> = levels.iter().flatten().copied().collect();
        // Every net exactly once...
        let mut sorted = flat.clone();
        sorted.sort_by_key(|n| n.index());
        assert_eq!(sorted, c.net_ids().collect::<Vec<_>>());
        // ...and the flattened order is topological: drivers (and therefore
        // all strict-fanin nets) precede their gate-output loads.
        let mut pos = vec![usize::MAX; c.num_nets()];
        for (i, &n) in flat.iter().enumerate() {
            pos[n.index()] = i;
        }
        for n in c.net_ids() {
            if let NetSource::Gate(g) = c.net(n).source() {
                for &input in c.gate(g).inputs() {
                    assert!(
                        pos[input.index()] < pos[n.index()],
                        "input {input:?} must precede output {n:?}"
                    );
                }
            }
        }

        // Level invariant: PIs at 0, gate outputs one above their deepest
        // input.
        let mut level_of = vec![usize::MAX; c.num_nets()];
        for (l, nets) in levels.iter().enumerate() {
            assert!(!nets.is_empty(), "level {l} must be non-empty");
            for &n in nets {
                level_of[n.index()] = l;
            }
        }
        for n in c.net_ids() {
            match c.net(n).source() {
                NetSource::PrimaryInput => assert_eq!(level_of[n.index()], 0),
                NetSource::Gate(g) => {
                    let deepest =
                        c.gate(g).inputs().iter().map(|&i| level_of[i.index()]).max().unwrap_or(0);
                    assert_eq!(level_of[n.index()], deepest + 1);
                }
            }
        }
    }
}
