//! Coupling capacitors.

use std::fmt;

use crate::NetId;

/// A parasitic coupling capacitor between two nets.
///
/// Physically the capacitor is symmetric; during analysis each side plays
/// the *victim* while the other side is the *aggressor*. One `Coupling` is
/// the paper's unit of fixing: eliminating it (by spacing or shielding)
/// removes the noise contribution in **both** directions.
///
/// Fields are public for the benefit of IR-level tooling (the `dna-lint`
/// verifier); a [`Circuit`](crate::Circuit) never exposes couplings mutably.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coupling {
    /// First endpoint.
    pub a: NetId,
    /// Second endpoint.
    pub b: NetId,
    /// Coupling capacitance in fF.
    pub cap: f64,
}

impl Coupling {
    /// First endpoint.
    #[must_use]
    pub fn a(&self) -> NetId {
        self.a
    }

    /// Second endpoint.
    #[must_use]
    pub fn b(&self) -> NetId {
        self.b
    }

    /// Coupling capacitance in fF.
    #[must_use]
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// Whether `net` is one of the endpoints.
    #[must_use]
    pub fn involves(&self, net: NetId) -> bool {
        self.a == net || self.b == net
    }

    /// The endpoint opposite `net`, or `None` if `net` is not an endpoint.
    ///
    /// # Example
    ///
    /// ```
    /// use dna_netlist::{CircuitBuilder, Library, CellKind};
    ///
    /// let mut b = CircuitBuilder::new(Library::cmos013());
    /// let x = b.input("x");
    /// let y = b.input("y");
    /// let cc = b.coupling(x, y, 5.0)?;
    /// # let out = b.gate(CellKind::And2, "g", &[x, y])?;
    /// # b.output(out);
    /// let circuit = b.build()?;
    /// let c = circuit.coupling(cc);
    /// assert_eq!(c.other(x), Some(y));
    /// assert_eq!(c.other(y), Some(x));
    /// # Ok::<(), dna_netlist::NetlistError>(())
    /// ```
    #[must_use]
    pub fn other(&self, net: NetId) -> Option<NetId> {
        if self.a == net {
            Some(self.b)
        } else if self.b == net {
            Some(self.a)
        } else {
            None
        }
    }
}

impl fmt::Display for Coupling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -- {} ({:.2} fF)", self.a, self.b, self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_and_other() {
        let c = Coupling { a: NetId::new(1), b: NetId::new(2), cap: 3.5 };
        assert!(c.involves(NetId::new(1)));
        assert!(c.involves(NetId::new(2)));
        assert!(!c.involves(NetId::new(3)));
        assert_eq!(c.other(NetId::new(1)), Some(NetId::new(2)));
        assert_eq!(c.other(NetId::new(3)), None);
        assert_eq!(c.cap(), 3.5);
    }
}
