//! Placement-aware synthetic circuit generation.
//!
//! The paper evaluates on ten industrial blocks synthesized to a 0.13 µm
//! library, placed and routed commercially and extracted. Lacking those,
//! this module substitutes circuits with the same *structure*:
//!
//! * a random combinational DAG with a locality bias (gates mostly consume
//!   recently created nets, giving realistic logic depth),
//! * gates laid out on a jittered grid in creation order, a crude stand-in
//!   for placement,
//! * coupling capacitors assigned between **geometrically close** nets —
//!   the property real extraction produces — with log-uniform magnitudes
//!   (few strong couplings, many weak ones).
//!
//! Everything is driven by a seeded RNG so benchmarks are reproducible.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{CellKind, Circuit, CircuitBuilder, Library, NetId, NetlistError};

/// Parameters for the synthetic generator.
///
/// # Example
///
/// ```
/// use dna_netlist::generator::{GeneratorConfig, generate};
///
/// let config = GeneratorConfig::new(50, 150).with_seed(7);
/// let circuit = generate(&config)?;
/// assert_eq!(circuit.num_gates(), 50);
/// assert_eq!(circuit.num_couplings(), 150);
/// # Ok::<(), dna_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of gate instances.
    pub gates: usize,
    /// Number of primary inputs. Defaults to `max(4, gates / 8)`.
    pub inputs: usize,
    /// Number of coupling capacitors to place.
    pub couplings: usize,
    /// Range of coupling capacitances in fF (log-uniform sampling).
    pub coupling_cap_range: (f64, f64),
    /// Range of grounded wire capacitances in fF (uniform sampling).
    pub wire_cap_range: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl GeneratorConfig {
    /// A configuration with sensible defaults for the given size.
    #[must_use]
    pub fn new(gates: usize, couplings: usize) -> Self {
        Self {
            gates,
            inputs: (gates / 8).max(4),
            couplings,
            coupling_cap_range: (1.0, 12.0),
            wire_cap_range: (2.0, 18.0),
            seed: 0,
        }
    }

    /// Returns the configuration with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the configuration with an explicit primary-input count.
    #[must_use]
    pub fn with_inputs(mut self, inputs: usize) -> Self {
        self.inputs = inputs.max(1);
        self
    }
}

/// Cell kinds the generator instantiates, roughly weighted like mapped
/// logic (lots of NAND/INV, some complex cells).
const KIND_POOL: &[CellKind] = &[
    CellKind::Inv,
    CellKind::Inv,
    CellKind::Buf,
    CellKind::Nand2,
    CellKind::Nand2,
    CellKind::Nand2,
    CellKind::Nor2,
    CellKind::And2,
    CellKind::Or2,
    CellKind::Xor2,
    CellKind::Nand3,
    CellKind::Nor3,
    CellKind::Mux2,
];

/// Generates a random combinational circuit per `config`.
///
/// # Errors
///
/// Propagates [`NetlistError`] from the builder; with a valid
/// configuration (at least one gate) generation always succeeds.
///
/// # Panics
///
/// Panics if `config.gates == 0`.
pub fn generate(config: &GeneratorConfig) -> Result<Circuit, NetlistError> {
    assert!(config.gates > 0, "generator needs at least one gate");
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x746f_706b); // "topk"
    let mut builder = CircuitBuilder::new(Library::cmos013());

    // Primary inputs along the left edge of the die.
    let mut nets: Vec<NetId> = Vec::with_capacity(config.inputs + config.gates);
    for i in 0..config.inputs {
        let id = builder.input(format!("pi{i}"));
        builder.position(id, 0.0, i as f64 * 2.0);
        nets.push(id);
    }

    // Gates on a jittered grid, consuming mostly recent nets.
    let grid_w = (config.gates as f64).sqrt().ceil().max(1.0) as usize;
    for gi in 0..config.gates {
        let kind = KIND_POOL[rng.gen_range(0..KIND_POOL.len())];
        let arity = kind.arity();
        let mut chosen: Vec<NetId> = Vec::with_capacity(arity);
        let mut guard = 0;
        while chosen.len() < arity {
            // Quadratic bias toward recently created nets keeps logic depth
            // realistic (long chains with local reconvergence).
            let u: f64 = rng.gen();
            let back = (u * u * nets.len() as f64) as usize;
            let idx = nets.len() - 1 - back.min(nets.len() - 1);
            let candidate = nets[idx];
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
            guard += 1;
            if guard > 64 {
                // Tiny net pools can stall on distinctness; widen uniformly.
                let candidate = nets[rng.gen_range(0..nets.len())];
                if !chosen.contains(&candidate) {
                    chosen.push(candidate);
                }
                if guard > 256 {
                    break;
                }
            }
        }
        if chosen.len() < arity {
            // Degenerate micro-circuit: fall back to an inverter.
            let out = builder.gate(CellKind::Inv, format!("u{gi}"), &chosen[..1])?;
            nets.push(out);
            continue;
        }
        let out = builder.gate(kind, format!("u{gi}"), &chosen)?;
        let x = 1.0 + (gi % grid_w) as f64 + rng.gen_range(-0.4..0.4);
        let y = (gi / grid_w) as f64 + rng.gen_range(-0.4..0.4);
        builder.position(out, x, y);
        let wc = rng.gen_range(config.wire_cap_range.0..=config.wire_cap_range.1);
        builder.wire_cap(out, wc)?;
        nets.push(out);
    }

    // Mark every net with no load as a primary output.
    place_outputs(&mut builder, &nets);

    // Geometric coupling assignment: pair nets that are close on the die.
    place_couplings(&mut builder, &nets, config, &mut rng)?;

    builder.build()
}

fn place_outputs(builder: &mut CircuitBuilder, nets: &[NetId]) {
    // The builder tracks loads as gates are added; nets that never became
    // an input of any gate are the combinational frontier.
    let unloaded: Vec<NetId> =
        nets.iter().copied().filter(|&n| builder.num_loads(n) == 0).collect();
    for n in unloaded {
        builder.output(n);
    }
}

fn place_couplings(
    builder: &mut CircuitBuilder,
    nets: &[NetId],
    config: &GeneratorConfig,
    rng: &mut StdRng,
) -> Result<(), NetlistError> {
    if config.couplings == 0 || nets.len() < 2 {
        return Ok(());
    }
    let pos: Vec<(f64, f64)> =
        nets.iter().map(|&n| builder.position_of(n).unwrap_or((0.0, 0.0))).collect();

    let mut used: HashSet<(NetId, NetId)> = HashSet::new();
    let mut radius = 1.6_f64;
    let (lo, hi) = config.coupling_cap_range;
    let mut placed = 0;
    while placed < config.couplings {
        // Collect all unused pairs within the current radius.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for i in 0..nets.len() {
            for j in (i + 1)..nets.len() {
                let dx = pos[i].0 - pos[j].0;
                let dy = pos[i].1 - pos[j].1;
                if dx * dx + dy * dy <= radius * radius {
                    let key = ordered(nets[i], nets[j]);
                    if !used.contains(&key) {
                        pairs.push((i, j));
                    }
                }
            }
        }
        if pairs.is_empty() {
            radius *= 1.5;
            if radius > 1e6 {
                break; // every possible pair is used
            }
            continue;
        }
        // Fisher–Yates style draw without replacement.
        while placed < config.couplings && !pairs.is_empty() {
            let pick = rng.gen_range(0..pairs.len());
            let (i, j) = pairs.swap_remove(pick);
            let key = ordered(nets[i], nets[j]);
            if !used.insert(key) {
                continue;
            }
            // Log-uniform magnitude: few strong, many weak couplings.
            let cap = lo * (hi / lo).powf(rng.gen::<f64>());
            builder.coupling(nets[i], nets[j], cap)?;
            placed += 1;
        }
        radius *= 1.5;
    }
    Ok(())
}

fn ordered(a: NetId, b: NetId) -> (NetId, NetId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_sizes() {
        let c = generate(&GeneratorConfig::new(40, 100).with_seed(1)).unwrap();
        assert_eq!(c.num_gates(), 40);
        assert_eq!(c.num_couplings(), 100);
        assert!(!c.primary_outputs().is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&GeneratorConfig::new(30, 60).with_seed(9)).unwrap();
        let b = generate(&GeneratorConfig::new(30, 60).with_seed(9)).unwrap();
        assert_eq!(a, b);
        let c = generate(&GeneratorConfig::new(30, 60).with_seed(10)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn couplings_are_unique_pairs() {
        let c = generate(&GeneratorConfig::new(25, 80).with_seed(3)).unwrap();
        let mut seen = HashSet::new();
        for id in c.coupling_ids() {
            let cc = c.coupling(id);
            assert!(seen.insert(ordered(cc.a(), cc.b())), "duplicate pair {cc}");
            assert!(cc.cap() > 0.0);
        }
    }

    #[test]
    fn caps_within_configured_range() {
        let cfg = GeneratorConfig::new(25, 80).with_seed(4);
        let c = generate(&cfg).unwrap();
        for id in c.coupling_ids() {
            let cap = c.coupling(id).cap();
            assert!(cap >= cfg.coupling_cap_range.0 - 1e-9);
            assert!(cap <= cfg.coupling_cap_range.1 + 1e-9);
        }
    }

    #[test]
    fn tiny_circuit_works() {
        let c = generate(&GeneratorConfig::new(1, 0).with_seed(0)).unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn more_couplings_than_pairs_saturates() {
        // 1 gate + 4 inputs = 5 nets -> 10 possible pairs; ask for 50.
        let cfg = GeneratorConfig::new(1, 50).with_seed(0);
        let c = generate(&cfg).unwrap();
        assert!(c.num_couplings() <= 10);
    }
}
