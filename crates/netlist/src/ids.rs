//! Typed identifiers for netlist entities.
//!
//! Newtype indices keep nets, gates and coupling capacitors statically
//! distinct (a `NetId` can never be used to index gates) while staying
//! `Copy` and cheap to store in candidate sets.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            #[must_use]
            pub fn new(index: u32) -> Self {
                Self(index)
            }

            /// The raw index.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of a net (a wire driven by one gate or primary input).
    NetId,
    "n"
);
id_type!(
    /// Identifier of a gate instance.
    GateId,
    "g"
);
id_type!(
    /// Identifier of a coupling capacitor between two nets.
    ///
    /// A coupling capacitor is the *unit of fixing* in the paper: a top-k
    /// aggressor set is a set of `CouplingId`s whose addition or
    /// elimination changes the circuit delay the most.
    CouplingId,
    "cc"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_index() {
        assert_eq!(NetId::new(7).index(), 7);
        assert_eq!(GateId::new(0).index(), 0);
        assert_eq!(CouplingId::new(41).index(), 41);
    }

    #[test]
    fn display_prefixes() {
        assert_eq!(NetId::new(3).to_string(), "n3");
        assert_eq!(GateId::new(3).to_string(), "g3");
        assert_eq!(CouplingId::new(3).to_string(), "cc3");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NetId::new(1) < NetId::new(2));
        let u: usize = NetId::new(9).into();
        assert_eq!(u, 9);
    }
}
