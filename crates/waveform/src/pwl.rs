//! Validated piecewise-linear curves.

use std::error::Error;
use std::fmt;
use std::ops::{Add, Sub};

use crate::{TimeInterval, EPS};

/// Error produced when constructing an invalid [`Pwl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PwlError {
    /// The point list was empty.
    Empty,
    /// A coordinate at the given index was NaN or infinite.
    NonFinite(usize),
    /// Breakpoint times decreased at the given index.
    NonIncreasing(usize),
}

impl fmt::Display for PwlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PwlError::Empty => write!(f, "piecewise-linear curve needs at least one point"),
            PwlError::NonFinite(i) => write!(f, "non-finite coordinate at breakpoint {i}"),
            PwlError::NonIncreasing(i) => {
                write!(f, "breakpoint times must be non-decreasing (violated at index {i})")
            }
        }
    }
}

impl Error for PwlError {}

/// A piecewise-linear curve `v(t)` over the whole time axis.
///
/// The curve is defined by a non-empty list of breakpoints with
/// non-decreasing times. Between breakpoints the value is linearly
/// interpolated; before the first and after the last breakpoint the value is
/// *extended as a constant* equal to the respective endpoint value. This
/// extension rule means a saturated ramp, a decayed noise pulse and a
/// constant are all representable without special cases.
///
/// `Pwl` is closed under addition, subtraction, pointwise maximum and
/// clamping — exactly the operations linear noise analysis needs
/// (envelope summation per paper Fig. 3, superposition per §3.1).
///
/// # Example
///
/// ```
/// use dna_waveform::Pwl;
///
/// let ramp = Pwl::new(vec![(0.0, 0.0), (10.0, 1.0)])?;
/// assert_eq!(ramp.eval(-5.0), 0.0); // constant extension on the left
/// assert_eq!(ramp.eval(5.0), 0.5);
/// assert_eq!(ramp.eval(20.0), 1.0); // constant extension on the right
/// # Ok::<(), dna_waveform::PwlError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pwl {
    /// Breakpoints `(t, v)` with strictly increasing `t`.
    points: Vec<(f64, f64)>,
}

impl Pwl {
    /// Creates a curve from breakpoints.
    ///
    /// Breakpoints closer together in time than [`EPS`] are merged (the
    /// later value wins), so callers may pass the output of geometric
    /// constructions without worrying about degenerate segments.
    ///
    /// # Errors
    ///
    /// Returns [`PwlError::Empty`] for an empty list,
    /// [`PwlError::NonFinite`] if any coordinate is NaN/infinite and
    /// [`PwlError::NonIncreasing`] if times decrease.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, PwlError> {
        if points.is_empty() {
            return Err(PwlError::Empty);
        }
        for (i, &(t, v)) in points.iter().enumerate() {
            if !t.is_finite() || !v.is_finite() {
                return Err(PwlError::NonFinite(i));
            }
        }
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(points.len());
        for (i, &(t, v)) in points.iter().enumerate() {
            match merged.last_mut() {
                Some(&mut (lt, _)) if t < lt - EPS => return Err(PwlError::NonIncreasing(i)),
                Some(last) if t - last.0 <= EPS => {
                    // Merge near-coincident breakpoints; the later value wins.
                    last.1 = v;
                }
                _ => merged.push((t, v)),
            }
        }
        Ok(Self { points: merged })
    }

    /// Wraps raw breakpoints **without any validation or merging**.
    ///
    /// Every other constructor guarantees the breakpoint invariants
    /// (non-empty, finite, times strictly increasing after merging); this
    /// one does not, so the resulting curve may make `eval` and the curve
    /// algebra return nonsense. Intended only for IR-level tooling — in
    /// particular the `dna-lint` verifier's known-bad test corpus, which
    /// needs curves that [`Pwl::new`] rightly refuses to build.
    #[must_use]
    pub fn from_points_unchecked(points: Vec<(f64, f64)>) -> Self {
        Self { points }
    }

    /// Checks the breakpoint invariants on an already-built curve.
    ///
    /// Returns the first violation as the same [`PwlError`] that
    /// [`Pwl::new`] would report: the list must be non-empty, every
    /// coordinate finite and times strictly increasing. Curves from checked
    /// constructors always pass; this audit exists for curves smuggled in
    /// through [`from_points_unchecked`](Self::from_points_unchecked) or
    /// future deserializers, and backs the lint rules `L020`/`L021`.
    ///
    /// # Errors
    ///
    /// The first [`PwlError`] found, scanning left to right.
    pub fn is_well_formed(&self) -> Result<(), PwlError> {
        if self.points.is_empty() {
            return Err(PwlError::Empty);
        }
        for (i, &(t, v)) in self.points.iter().enumerate() {
            if !t.is_finite() || !v.is_finite() {
                return Err(PwlError::NonFinite(i));
            }
            if i > 0 && t <= self.points[i - 1].0 {
                return Err(PwlError::NonIncreasing(i));
            }
        }
        Ok(())
    }

    /// The constant curve `v(t) = v`.
    #[must_use]
    pub fn constant(v: f64) -> Self {
        Self { points: vec![(0.0, v)] }
    }

    /// The identically-zero curve.
    #[must_use]
    pub fn zero() -> Self {
        Self::constant(0.0)
    }

    /// Breakpoints of the curve.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Evaluates the curve at time `t`.
    #[must_use]
    pub fn eval(&self, t: f64) -> f64 {
        let pts = &self.points;
        if t <= pts[0].0 {
            return pts[0].1;
        }
        let last = pts[pts.len() - 1];
        if t >= last.0 {
            return last.1;
        }
        // Binary search for the segment containing t.
        let idx = pts.partition_point(|&(pt, _)| pt <= t);
        let (t0, v0) = pts[idx - 1];
        let (t1, v1) = pts[idx];
        if t1 - t0 <= EPS {
            return v1;
        }
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// The curve translated right by `dt`.
    #[must_use]
    pub fn shifted(&self, dt: f64) -> Self {
        debug_assert!(dt.is_finite(), "shift by non-finite dt {dt}");
        Self { points: self.points.iter().map(|&(t, v)| (t + dt, v)).collect() }
    }

    /// The curve with all values multiplied by `factor`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        debug_assert!(factor.is_finite(), "scale by non-finite factor {factor}");
        Self { points: self.points.iter().map(|&(t, v)| (t, v * factor)).collect() }
    }

    /// The curve negated pointwise.
    #[must_use]
    pub fn negated(&self) -> Self {
        self.scaled(-1.0)
    }

    /// Maximum value attained over the whole curve (including extensions,
    /// which equal the endpoint values).
    #[must_use]
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Maximum value attained within the closed `interval`.
    #[must_use]
    pub fn max_over(&self, interval: TimeInterval) -> f64 {
        let mut best = self.eval(interval.lo()).max(self.eval(interval.hi()));
        for &(t, v) in &self.points {
            if interval.contains(t) {
                best = best.max(v);
            }
        }
        best
    }

    /// Time span from the first to the last breakpoint.
    #[must_use]
    pub fn span(&self) -> TimeInterval {
        TimeInterval::new(self.points[0].0, self.points[self.points.len() - 1].0)
    }

    /// Merged, sorted breakpoint times of `self` and `other`.
    ///
    /// Both inputs are already sorted, so this is a linear merge — these
    /// curves are combined millions of times in the top-k hot loop.
    fn merged_times(&self, other: &Pwl) -> Vec<f64> {
        let a = &self.points;
        let b = &other.points;
        let mut ts: Vec<f64> = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        let push = |ts: &mut Vec<f64>, t: f64| match ts.last() {
            Some(&last) if (t - last).abs() <= EPS => {}
            _ => ts.push(t),
        };
        while i < a.len() && j < b.len() {
            if a[i].0 <= b[j].0 {
                push(&mut ts, a[i].0);
                i += 1;
            } else {
                push(&mut ts, b[j].0);
                j += 1;
            }
        }
        while i < a.len() {
            push(&mut ts, a[i].0);
            i += 1;
        }
        while j < b.len() {
            push(&mut ts, b[j].0);
            j += 1;
        }
        ts
    }

    /// Combines two curves with a pointwise linear operation.
    ///
    /// Correct for operations (like `+` and `-`) that map line segments to
    /// line segments, so sampling at merged breakpoints loses nothing.
    fn zip_linear(&self, other: &Pwl, f: impl Fn(f64, f64) -> f64) -> Pwl {
        let pts = self
            .merged_times(other)
            .into_iter()
            .map(|t| (t, f(self.eval(t), other.eval(t))))
            .collect();
        Pwl::new(pts).expect("merged breakpoints are sorted and finite")
    }

    /// Pointwise maximum of two curves.
    ///
    /// Unlike `+`/`-`, `max` can create new breakpoints where the curves
    /// cross, so crossings between merged breakpoints are inserted.
    #[must_use]
    pub fn pointwise_max(&self, other: &Pwl) -> Pwl {
        let times = self.merged_times(other);
        let mut pts: Vec<(f64, f64)> = Vec::with_capacity(times.len() * 2);
        for (i, &t) in times.iter().enumerate() {
            let (a, b) = (self.eval(t), other.eval(t));
            pts.push((t, a.max(b)));
            if let Some(&tn) = times.get(i + 1) {
                let (an, bn) = (self.eval(tn), other.eval(tn));
                let d0 = a - b;
                let d1 = an - bn;
                // Sign change strictly inside the segment => crossing point.
                if d0 * d1 < 0.0 {
                    let alpha = d0 / (d0 - d1);
                    let tc = t + alpha * (tn - t);
                    if tc > t + EPS && tc < tn - EPS {
                        pts.push((tc, self.eval(tc).max(other.eval(tc))));
                    }
                }
            }
        }
        Pwl::new(pts).expect("constructed points are sorted and finite")
    }

    /// The curve clamped from below at `floor`.
    #[must_use]
    pub fn clamped_min(&self, floor: f64) -> Pwl {
        self.pointwise_max(&Pwl::constant(floor))
    }

    /// Supremum of `{ t : v(t) <= level }`.
    ///
    /// Returns `f64::INFINITY` when the curve ends at or below `level`
    /// (the set is unbounded above) and `f64::NEG_INFINITY` when the curve
    /// never reaches `level` at all. Otherwise the result is the **final
    /// upward crossing** of `level` — exactly the quantity needed for the
    /// `t50` of a noisy rising transition (latest time the waveform is
    /// still at or below 50 % Vdd).
    #[must_use]
    pub fn last_time_at_or_below(&self, level: f64) -> f64 {
        let pts = &self.points;
        let n = pts.len();
        if pts[n - 1].1 <= level {
            return f64::INFINITY;
        }
        // Scan segments right-to-left; the first one dipping to `level`
        // contains the final crossing. In the matched segment `v0 <= level`
        // and `v1 > level` (else the segment to the right matched first, or
        // the early return above fired), so the interpolation denominator
        // is strictly positive and the crossing it yields is exact — even
        // for near-flat segments, where the ratio of two tiny differences
        // stays well-conditioned. A plateau exactly at `level` never
        // reaches this branch directly: its right neighbour starts at
        // `level` and matches first with a zero numerator, returning the
        // plateau's right edge — the *latest* time at the level.
        for j in (0..n.saturating_sub(1)).rev() {
            let (t0, v0) = pts[j];
            let (t1, v1) = pts[j + 1];
            if v0 <= level {
                if v1 <= v0 {
                    // Unreachable for curves upholding the scan invariant;
                    // kept as a belt-and-braces guard against division by
                    // a non-positive span on unchecked inputs.
                    return t1;
                }
                return t0 + (level - v0) / (v1 - v0) * (t1 - t0);
            }
        }
        // No breakpoint at or below level; check the left extension.
        if pts[0].1 <= level {
            return pts[0].0;
        }
        f64::NEG_INFINITY
    }

    /// Supremum of `{ t : v(t) >= level }`; mirror of
    /// [`last_time_at_or_below`](Self::last_time_at_or_below) for falling
    /// victims.
    #[must_use]
    pub fn last_time_at_or_above(&self, level: f64) -> f64 {
        self.negated().last_time_at_or_below(-level)
    }

    /// The curve with collinear and near-collinear interior breakpoints
    /// removed.
    ///
    /// A breakpoint is dropped when the curve value there differs from the
    /// straight line between its retained neighbours by at most `tol`.
    /// Sums of many trapezoids accumulate redundant breakpoints; pruning
    /// them keeps repeated envelope algebra (the hot loop of top-k
    /// enumeration) close to linear cost.
    #[must_use]
    pub fn simplified(&self, tol: f64) -> Pwl {
        let pts = &self.points;
        if pts.len() <= 2 {
            return self.clone();
        }
        let mut out: Vec<(f64, f64)> = Vec::with_capacity(pts.len());
        out.push(pts[0]);
        for i in 1..pts.len() - 1 {
            let (t0, v0) = *out.last().expect("seeded with first point");
            let (t1, v1) = pts[i];
            let (t2, v2) = pts[i + 1];
            // Value predicted at t1 by the chord from the last kept point
            // to the next point.
            let predicted =
                if (t2 - t0).abs() <= EPS { v0 } else { v0 + (v2 - v0) * (t1 - t0) / (t2 - t0) };
            if (v1 - predicted).abs() > tol {
                out.push(pts[i]);
            }
        }
        out.push(pts[pts.len() - 1]);
        Pwl::new(out).expect("subset of ordered points stays ordered")
    }

    /// Pointwise sum of two curves with collinear breakpoints pruned, in
    /// one pass and one output allocation.
    ///
    /// Equivalent to `(&self + &other).simplified(tol)` but without the
    /// intermediate curve, the merged-times buffer, or the second
    /// simplification sweep — this is the allocation profile the top-k
    /// enumeration hot loop needs, where millions of envelope sums happen
    /// per run.
    #[must_use]
    pub fn add_simplified(&self, other: &Pwl, tol: f64) -> Pwl {
        let mut out = SimplifyingBuilder::new(self.points.len() + other.points.len(), tol);
        let mut a = SegmentCursor::new(&self.points);
        let mut b = SegmentCursor::new(&other.points);
        merge_times(&self.points, &other.points, |t| {
            out.push(t, a.eval_monotone(t) + b.eval_monotone(t));
        });
        Pwl { points: out.finish() }
    }

    /// `max(self - other, 0)` pointwise with collinear breakpoints pruned,
    /// in one pass and one output allocation.
    ///
    /// Equivalent to `(&self - &other).clamped_min(0.0).simplified(tol)`
    /// but without the three intermediate curves that chain would build.
    /// Zero-crossings of the difference become breakpoints, exactly as
    /// [`pointwise_max`](Self::pointwise_max) against the zero curve would
    /// insert them.
    #[must_use]
    pub fn sub_clamped_simplified(&self, other: &Pwl, tol: f64) -> Pwl {
        let mut out = SimplifyingBuilder::new(self.points.len() + other.points.len(), tol);
        let mut a = SegmentCursor::new(&self.points);
        let mut b = SegmentCursor::new(&other.points);
        // Difference at the previous merged time, for crossing detection.
        let mut prev: Option<(f64, f64)> = None;
        merge_times(&self.points, &other.points, |t| {
            let d = a.eval_monotone(t) - b.eval_monotone(t);
            if let Some((t0, d0)) = prev {
                // Sign change strictly inside the segment: the clamped
                // curve has a kink at the crossing.
                if d0 * d < 0.0 {
                    let tc = t0 + d0 / (d0 - d) * (t - t0);
                    if tc > t0 + EPS && tc < t - EPS {
                        out.push(tc, 0.0);
                    }
                }
            }
            prev = Some((t, d));
            out.push(t, d.max(0.0));
        });
        Pwl { points: out.finish() }
    }

    /// Whether `self(t) >= other(t) - tol` for every `t` in `interval`.
    ///
    /// This is the *encapsulation* primitive behind the paper's dominance
    /// relation: both curves are linear between their merged breakpoints,
    /// so checking the merged breakpoints (clipped to the interval) plus the
    /// interval endpoints is exact.
    #[must_use]
    pub fn ge_over(&self, other: &Pwl, interval: TimeInterval, tol: f64) -> bool {
        let check = |t: f64| self.eval(t) >= other.eval(t) - tol;
        if !check(interval.lo()) || !check(interval.hi()) {
            return false;
        }
        self.points
            .iter()
            .chain(other.points.iter())
            .map(|&(t, _)| t)
            .filter(|&t| interval.contains(t))
            .all(check)
    }
}

/// Calls `visit` with the merged, EPS-deduplicated breakpoint times of
/// both point lists, in ascending order, without materializing them.
fn merge_times(a: &[(f64, f64)], b: &[(f64, f64)], mut visit: impl FnMut(f64)) {
    let (mut i, mut j) = (0, 0);
    let mut last: Option<f64> = None;
    let mut emit = |t: f64, visit: &mut dyn FnMut(f64)| {
        if !matches!(last, Some(l) if (t - l).abs() <= EPS) {
            visit(t);
            last = Some(t);
        }
    };
    while i < a.len() && j < b.len() {
        if a[i].0 <= b[j].0 {
            emit(a[i].0, &mut visit);
            i += 1;
        } else {
            emit(b[j].0, &mut visit);
            j += 1;
        }
    }
    while i < a.len() {
        emit(a[i].0, &mut visit);
        i += 1;
    }
    while j < b.len() {
        emit(b[j].0, &mut visit);
        j += 1;
    }
}

/// Evaluates one curve at a non-decreasing sequence of times in overall
/// linear time, replacing the per-time binary search of [`Pwl::eval`].
struct SegmentCursor<'a> {
    pts: &'a [(f64, f64)],
    /// Index of the first breakpoint strictly after the last queried time.
    idx: usize,
}

impl<'a> SegmentCursor<'a> {
    fn new(pts: &'a [(f64, f64)]) -> Self {
        Self { pts, idx: 0 }
    }

    /// Value at `t`; callers must query with non-decreasing `t`.
    fn eval_monotone(&mut self, t: f64) -> f64 {
        let pts = self.pts;
        while self.idx < pts.len() && pts[self.idx].0 <= t {
            self.idx += 1;
        }
        if self.idx == 0 {
            return pts[0].1; // constant extension on the left
        }
        let (t0, v0) = pts[self.idx - 1];
        if self.idx == pts.len() {
            return pts[pts.len() - 1].1; // constant extension on the right
        }
        let (t1, v1) = pts[self.idx];
        if t1 - t0 <= EPS {
            return v1;
        }
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }
}

/// Streaming breakpoint sink that prunes collinear interior points on the
/// fly, reproducing [`Pwl::simplified`]'s keep/drop decisions (chord from
/// the last kept point to the immediate next point) without a second pass.
struct SimplifyingBuilder {
    out: Vec<(f64, f64)>,
    /// Interior point whose keep/drop decision waits on its successor.
    pending: Option<(f64, f64)>,
    tol: f64,
}

impl SimplifyingBuilder {
    fn new(capacity: usize, tol: f64) -> Self {
        Self { out: Vec::with_capacity(capacity), pending: None, tol }
    }

    /// Appends a breakpoint; times must be non-decreasing. A point within
    /// EPS of its predecessor replaces that predecessor's value, matching
    /// the merge rule of [`Pwl::new`].
    fn push(&mut self, t: f64, v: f64) {
        if let Some(p) = &mut self.pending {
            if t - p.0 <= EPS {
                p.1 = v;
                return;
            }
        } else if let Some(last) = self.out.last_mut() {
            if t - last.0 <= EPS {
                last.1 = v;
                return;
            }
        }
        let Some(last) = self.out.last().copied() else {
            self.out.push((t, v));
            return;
        };
        let Some((t1, v1)) = self.pending else {
            self.pending = Some((t, v));
            return;
        };
        // Decide the held interior point against the chord last -> (t, v).
        let (t0, v0) = last;
        let predicted =
            if (t - t0).abs() <= EPS { v0 } else { v0 + (v - v0) * (t1 - t0) / (t - t0) };
        if (v1 - predicted).abs() > self.tol {
            self.out.push((t1, v1));
        }
        self.pending = Some((t, v));
    }

    /// Final breakpoint list; the last point is always kept.
    fn finish(mut self) -> Vec<(f64, f64)> {
        if let Some(p) = self.pending.take() {
            self.out.push(p);
        }
        debug_assert!(
            self.out.windows(2).all(|w| w[0].0 < w[1].0),
            "builder output times must strictly increase"
        );
        self.out
    }
}

impl Add<&Pwl> for &Pwl {
    type Output = Pwl;

    fn add(self, rhs: &Pwl) -> Pwl {
        self.zip_linear(rhs, |a, b| a + b)
    }
}

impl Sub<&Pwl> for &Pwl {
    type Output = Pwl;

    fn sub(self, rhs: &Pwl) -> Pwl {
        self.zip_linear(rhs, |a, b| a - b)
    }
}

impl fmt::Display for Pwl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pwl[")?;
        for (i, (t, v)) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({t:.3}, {v:.4})")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Pwl {
        Pwl::new(vec![(0.0, 0.0), (10.0, 1.0)]).unwrap()
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Pwl::new(vec![]), Err(PwlError::Empty));
    }

    #[test]
    fn non_finite_rejected() {
        assert_eq!(Pwl::new(vec![(0.0, f64::NAN)]), Err(PwlError::NonFinite(0)));
        assert_eq!(Pwl::new(vec![(0.0, 0.0), (f64::INFINITY, 1.0)]), Err(PwlError::NonFinite(1)));
    }

    #[test]
    fn decreasing_times_rejected() {
        assert_eq!(Pwl::new(vec![(1.0, 0.0), (0.0, 1.0)]), Err(PwlError::NonIncreasing(1)));
    }

    #[test]
    fn coincident_points_merged() {
        let p = Pwl::new(vec![(0.0, 0.0), (0.0, 5.0), (1.0, 1.0)]).unwrap();
        assert_eq!(p.points().len(), 2);
        assert_eq!(p.eval(0.0), 5.0);
    }

    #[test]
    fn eval_interpolates_and_extends() {
        let r = ramp();
        assert_eq!(r.eval(-1.0), 0.0);
        assert_eq!(r.eval(0.0), 0.0);
        assert!((r.eval(2.5) - 0.25).abs() < 1e-12);
        assert_eq!(r.eval(10.0), 1.0);
        assert_eq!(r.eval(100.0), 1.0);
    }

    #[test]
    fn add_and_sub() {
        let r = ramp();
        let c = Pwl::constant(0.5);
        let s = &r + &c;
        assert!((s.eval(5.0) - 1.0).abs() < 1e-12);
        let d = &r - &c;
        assert!((d.eval(0.0) + 0.5).abs() < 1e-12);
        assert!((d.eval(10.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pointwise_max_inserts_crossing() {
        let up = ramp();
        let down = Pwl::new(vec![(0.0, 1.0), (10.0, 0.0)]).unwrap();
        let m = up.pointwise_max(&down);
        // Crossing at t=5 where both are 0.5.
        assert!((m.eval(5.0) - 0.5).abs() < 1e-9);
        assert!((m.eval(0.0) - 1.0).abs() < 1e-12);
        assert!((m.eval(10.0) - 1.0).abs() < 1e-12);
        // Strictly above min of both everywhere sampled.
        for i in 0..=20 {
            let t = i as f64 * 0.5;
            assert!(m.eval(t) + 1e-9 >= up.eval(t).max(down.eval(t)));
        }
    }

    #[test]
    fn clamp_min_floors_curve() {
        let dip = Pwl::new(vec![(0.0, 1.0), (5.0, -1.0), (10.0, 1.0)]).unwrap();
        let c = dip.clamped_min(0.0);
        assert_eq!(c.eval(5.0), 0.0);
        assert!((c.eval(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn last_crossing_simple_ramp() {
        let r = ramp();
        assert!((r.last_time_at_or_below(0.5) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn last_crossing_with_dip_takes_latest() {
        // Rise, dip below, rise again: the *last* 0.5-crossing matters.
        let w = Pwl::new(vec![(0.0, 0.0), (2.0, 0.8), (4.0, 0.2), (8.0, 1.0)]).unwrap();
        let t = w.last_time_at_or_below(0.5);
        // Segment (4,0.2)->(8,1.0): 0.5 at t = 4 + 0.3/0.8*4 = 5.5.
        assert!((t - 5.5).abs() < 1e-9);
    }

    #[test]
    fn last_crossing_degenerate_cases() {
        let below = Pwl::constant(0.2);
        assert_eq!(below.last_time_at_or_below(0.5), f64::INFINITY);
        let above = Pwl::constant(0.9);
        assert_eq!(above.last_time_at_or_below(0.5), f64::NEG_INFINITY);
    }

    #[test]
    fn last_above_mirrors_last_below() {
        let fall = Pwl::new(vec![(0.0, 1.0), (10.0, 0.0)]).unwrap();
        assert!((fall.last_time_at_or_above(0.5) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn last_crossing_plateau_exactly_at_level_returns_latest_time() {
        // Flat stretch exactly at the level, then a rise: the supremum of
        // `{t : v(t) <= 0.5}` is the plateau's right edge, not its start.
        let w = Pwl::new(vec![(0.0, 0.0), (1.0, 0.5), (6.0, 0.5), (8.0, 1.0)]).unwrap();
        assert!((w.last_time_at_or_below(0.5) - 6.0).abs() < 1e-12);
        // Mirror case for falling victims.
        let m = w.negated();
        assert!((m.last_time_at_or_above(-0.5) - 6.0).abs() < 1e-12);
        // Plateau at level after a dip from above: same answer from the
        // right-neighbour segment's zero-numerator interpolation.
        let v = Pwl::new(vec![(0.0, 1.0), (2.0, 0.5), (5.0, 0.5), (7.0, 1.0)]).unwrap();
        assert!((v.last_time_at_or_below(0.5) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn last_crossing_near_flat_segment_interpolates_exactly() {
        // A segment rising by less than EPS across a long span used to be
        // resolved to its right endpoint wholesale; the crossing must be
        // interpolated inside the segment instead.
        let d = 1e-10; // well under EPS
        let w = Pwl::new(vec![(0.0, 0.5 - d), (1000.0, 0.5 + d), (1001.0, 1.0)]).unwrap();
        let t = w.last_time_at_or_below(0.5);
        assert!((t - 500.0).abs() < 1e-6, "near-flat crossing {t}, expected 500");
    }

    #[test]
    fn last_crossing_matches_dense_sampling() {
        // Ground truth by dense sampling: the returned crossing time must
        // be the latest sample time still at or below the level, up to the
        // sampling step.
        let curves = [
            Pwl::new(vec![(0.0, 0.0), (1.0, 0.5), (6.0, 0.5), (8.0, 1.0)]).unwrap(),
            Pwl::new(vec![(0.0, 0.0), (2.0, 0.8), (4.0, 0.2), (8.0, 1.0)]).unwrap(),
            Pwl::new(vec![(0.0, 0.5 - 1e-10), (7.0, 0.5 + 1e-10), (8.0, 1.0)]).unwrap(),
            Pwl::new(vec![(0.0, 0.4), (3.0, 0.6), (4.0, 0.5), (5.0, 0.5), (8.0, 0.9)]).unwrap(),
        ];
        for (ci, w) in curves.iter().enumerate() {
            let t = w.last_time_at_or_below(0.5);
            let step = 1e-4;
            let mut latest = f64::NEG_INFINITY;
            let mut k = 0;
            loop {
                let s = k as f64 * step;
                if s > 8.0 {
                    break;
                }
                if w.eval(s) <= 0.5 {
                    latest = s;
                }
                k += 1;
            }
            assert!(
                (t - latest).abs() <= step + 1e-9,
                "curve {ci}: crossing {t} vs dense-sampled {latest}"
            );
            // And the reported time really sits at the level.
            assert!((w.eval(t) - 0.5).abs() <= 1e-9, "curve {ci}: v({t}) = {}", w.eval(t));
        }
    }

    #[test]
    fn ge_over_detects_encapsulation() {
        let big = Pwl::new(vec![(0.0, 0.0), (5.0, 1.0), (10.0, 0.0)]).unwrap();
        let small = Pwl::new(vec![(2.0, 0.0), (5.0, 0.5), (8.0, 0.0)]).unwrap();
        let iv = TimeInterval::new(0.0, 10.0);
        assert!(big.ge_over(&small, iv, EPS));
        assert!(!small.ge_over(&big, iv, EPS));
        // Every curve encapsulates itself under tolerance.
        assert!(big.ge_over(&big, iv, EPS));
    }

    #[test]
    fn ge_over_respects_interval_clipping() {
        let a = Pwl::new(vec![(0.0, 0.0), (10.0, 1.0)]).unwrap();
        let b = Pwl::new(vec![(0.0, 1.0), (10.0, 0.0)]).unwrap();
        // Over [6, 10] the rising curve is above the falling one.
        assert!(a.ge_over(&b, TimeInterval::new(6.0, 10.0), EPS));
        assert!(!a.ge_over(&b, TimeInterval::new(0.0, 10.0), EPS));
    }

    #[test]
    fn shift_and_scale() {
        let r = ramp();
        let s = r.shifted(5.0);
        assert!((s.eval(10.0) - 0.5).abs() < 1e-12);
        let k = r.scaled(2.0);
        assert!((k.eval(10.0) - 2.0).abs() < 1e-12);
        assert_eq!(r.negated().eval(10.0), -1.0);
    }

    #[test]
    fn max_over_interval() {
        let tri = Pwl::new(vec![(0.0, 0.0), (5.0, 1.0), (10.0, 0.0)]).unwrap();
        assert!((tri.max_over(TimeInterval::new(0.0, 10.0)) - 1.0).abs() < 1e-12);
        assert!((tri.max_over(TimeInterval::new(6.0, 10.0)) - tri.eval(6.0)).abs() < 1e-12);
    }

    #[test]
    fn well_formed_audit_matches_constructor() {
        assert_eq!(ramp().is_well_formed(), Ok(()));
        assert_eq!(Pwl::constant(3.0).is_well_formed(), Ok(()));
        let empty = Pwl::from_points_unchecked(vec![]);
        assert_eq!(empty.is_well_formed(), Err(PwlError::Empty));
        let nan = Pwl::from_points_unchecked(vec![(0.0, f64::NAN)]);
        assert_eq!(nan.is_well_formed(), Err(PwlError::NonFinite(0)));
        let backwards = Pwl::from_points_unchecked(vec![(1.0, 0.0), (0.5, 0.0)]);
        assert_eq!(backwards.is_well_formed(), Err(PwlError::NonIncreasing(1)));
        let duplicate = Pwl::from_points_unchecked(vec![(1.0, 0.0), (1.0, 2.0)]);
        assert_eq!(duplicate.is_well_formed(), Err(PwlError::NonIncreasing(1)));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", ramp()).is_empty());
    }

    #[test]
    fn add_simplified_matches_chained_ops() {
        let a = Pwl::new(vec![(0.0, 0.0), (2.0, 0.3), (5.0, 0.3), (9.0, 0.0)]).unwrap();
        let b = Pwl::new(vec![(1.0, 0.0), (4.0, 0.5), (6.0, 0.1), (8.0, 0.0)]).unwrap();
        let fused = a.add_simplified(&b, EPS);
        let chained = (&a + &b).simplified(EPS);
        assert_eq!(fused.points(), chained.points());
        for i in 0..=100 {
            let t = -1.0 + i as f64 * 0.11;
            assert!((fused.eval(t) - (a.eval(t) + b.eval(t))).abs() < 1e-9, "mismatch at {t}");
        }
        // Collinear interior points of the sum are pruned.
        let flat = Pwl::new(vec![(0.0, 0.0), (1.0, 0.1), (2.0, 0.2), (3.0, 0.3)]).unwrap();
        let s = flat.add_simplified(&Pwl::zero(), 1e-9);
        assert!(s.points().len() <= 3);
    }

    #[test]
    fn sub_clamped_simplified_matches_chained_ops() {
        let a = Pwl::new(vec![(0.0, 0.0), (3.0, 0.6), (6.0, 0.6), (9.0, 0.0)]).unwrap();
        let b = Pwl::new(vec![(1.0, 0.0), (4.0, 0.9), (7.0, 0.0)]).unwrap();
        let fused = a.sub_clamped_simplified(&b, EPS);
        let chained = (&a - &b).clamped_min(0.0).simplified(EPS);
        for i in 0..=110 {
            let t = -1.0 + i as f64 * 0.1;
            let want = (a.eval(t) - b.eval(t)).max(0.0);
            assert!((fused.eval(t) - want).abs() < 1e-9, "fused mismatch at {t}");
            assert!((fused.eval(t) - chained.eval(t)).abs() < 1e-9, "chained mismatch at {t}");
        }
        // Never negative anywhere.
        assert!(fused.points().iter().all(|&(_, v)| v >= 0.0));
    }

    #[test]
    fn sub_clamped_simplified_full_cancellation() {
        let a = ramp();
        let z = a.sub_clamped_simplified(&a.scaled(2.0), EPS);
        for i in 0..=40 {
            let t = i as f64 * 0.5;
            assert_eq!(z.eval(t).max(0.0), z.eval(t));
            assert!(z.eval(t) <= 1e-12);
        }
    }

    #[test]
    fn simplified_removes_collinear_points() {
        let p =
            Pwl::new(vec![(0.0, 0.0), (1.0, 0.1), (2.0, 0.2), (3.0, 0.3), (10.0, 1.0)]).unwrap();
        let s = p.simplified(1e-9);
        assert!(s.points().len() < p.points().len());
        for i in 0..=40 {
            let t = i as f64 * 0.25;
            assert!((s.eval(t) - p.eval(t)).abs() < 1e-9, "mismatch at {t}");
        }
    }

    #[test]
    fn simplified_preserves_corners() {
        let tri = Pwl::new(vec![(0.0, 0.0), (5.0, 1.0), (10.0, 0.0)]).unwrap();
        let s = tri.simplified(1e-9);
        assert_eq!(s.points().len(), 3);
        assert_eq!(s, tri);
    }
}
