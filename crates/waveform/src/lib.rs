//! Piecewise-linear waveform algebra for crosstalk delay-noise analysis.
//!
//! This crate is the mathematical substrate of the DAC 2007 *"Top-k
//! Aggressors Sets in Delay Noise Analysis"* reproduction. Everything a
//! linear noise framework needs is here:
//!
//! * [`Pwl`] — validated piecewise-linear curves with evaluation, algebra
//!   (`+`, `-`, pointwise max), crossings and shifting,
//! * [`Transition`] — saturated-ramp switching waveforms with a
//!   [`t50`](Transition::t50) measurement point,
//! * [`NoisePulse`] — triangular coupled-noise pulses,
//! * [`Envelope`] — trapezoidal noise envelopes built from a pulse aligned
//!   at the aggressor's earliest and latest arrival times (paper Fig. 2),
//!   envelope summation (Fig. 3), and the *encapsulation* test underlying
//!   the paper's dominance relation (§3.2),
//! * [`superposition`] — superimposing a combined envelope onto a victim
//!   transition and measuring the induced **delay noise** (shift of the
//!   50 %-Vdd crossing).
//!
//! Voltages are normalized to `Vdd = 1.0`; times are unit-agnostic
//! (picoseconds throughout the workspace).
//!
//! # Example
//!
//! ```
//! use dna_waveform::{Transition, Edge, NoisePulse, Envelope, superposition};
//!
//! // A rising victim transition reaching 50% Vdd at t = 105.
//! let victim = Transition::new(100.0, 10.0, Edge::Rising);
//! assert!((victim.t50() - 105.0).abs() < 1e-9);
//!
//! // An aggressor whose timing window spans [95, 115] couples a triangular
//! // pulse; the envelope is the trapezoid over that window.
//! let pulse = NoisePulse::symmetric(0.0, 0.3, 8.0);
//! let env = Envelope::from_window(&pulse, 95.0, 115.0);
//!
//! let noise = superposition::delay_noise(&victim, &env);
//! assert!(noise > 0.0);
//! ```

// Accepted `clippy::pedantic` baseline. The CI_FULL pedantic triage in
// `ci.sh` is non-gating; this allowlist keeps its output limited to new
// findings. Numeric casts between index/size types are pervasive and
// intentional here, exact float comparison is the point of the
// bit-identity contracts, and short or similar names mirror the paper's
// notation.
#![allow(
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::many_single_char_names,
    clippy::missing_panics_doc,
    clippy::similar_names,
    clippy::too_many_lines
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod envelope;
mod interval;
mod pulse;
mod pwl;
mod transition;

pub mod superposition;

pub use envelope::Envelope;
pub use interval::TimeInterval;
pub use pulse::NoisePulse;
pub use pwl::{Pwl, PwlError};
pub use transition::{Edge, Transition};

/// Tolerance used throughout the crate when comparing times and voltages.
///
/// Two values closer than `EPS` are considered equal; encapsulation tests
/// allow a violation of up to `EPS` so that an envelope still dominates an
/// exact copy of itself in the presence of floating-point rounding.
pub const EPS: f64 = 1e-9;
