//! Trapezoidal noise envelopes (paper Fig. 2 and Fig. 3).

use std::borrow::Borrow;
use std::fmt;

use crate::{NoisePulse, Pwl, TimeInterval, EPS};

/// A noise envelope: an upper bound on the noise an aggressor (or a set of
/// aggressors) can couple onto a victim at every instant.
///
/// Per §2 of the paper, the *trapezoidal* envelope of a single aggressor is
/// built by placing the aggressor's noise pulse at its earliest arrival
/// time (EAT) and at its latest arrival time (LAT) and connecting the two
/// peaks ([`Envelope::from_window`]). Envelopes of multiple aggressors are
/// added pointwise to form a *combined* envelope ([`Envelope::sum`],
/// Fig. 3).
///
/// Invariants: values are non-negative everywhere, and the envelope decays
/// to zero at both ends of its breakpoint list (so the constant extension
/// of the underlying [`Pwl`] is zero).
///
/// # Example
///
/// ```
/// use dna_waveform::{NoisePulse, Envelope};
///
/// let pulse = NoisePulse::symmetric(0.0, 0.2, 4.0);
/// let env = Envelope::from_window(&pulse, 10.0, 20.0);
/// // Flat top between the two peak positions.
/// assert_eq!(env.eval(12.0), 0.2);
/// assert_eq!(env.eval(22.0), 0.2);
/// assert_eq!(env.peak(), 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct Envelope {
    curve: Pwl,
    /// Cached raw maximum of the curve ([`Pwl::max_value`]).
    peak: f64,
    /// Cached time at which `peak` is first attained.
    peak_time: f64,
    /// Cached support lower bound: for `t < support_lo` the curve is
    /// guaranteed within [`EPS`] of zero. `f64::INFINITY` for the zero
    /// envelope, `f64::NEG_INFINITY` when the left tail does not decay.
    support_lo: f64,
    /// Cached support upper bound, mirror of `support_lo`.
    support_hi: f64,
}

/// Cached bounds equality ignores the cache: two envelopes are equal when
/// their curves are (honest caches are a pure function of the curve).
impl PartialEq for Envelope {
    fn eq(&self, other: &Self) -> bool {
        self.curve == other.curve
    }
}

impl Envelope {
    /// Wraps a curve, computing the cached peak/support bounds in one scan.
    fn from_raw(curve: Pwl) -> Self {
        let pts = curve.points();
        let mut peak = f64::NEG_INFINITY;
        let mut peak_time = pts.first().map_or(0.0, |p| p.0);
        let mut lo_idx = None;
        let mut hi_idx = None;
        for (i, &(t, v)) in pts.iter().enumerate() {
            if v > peak {
                peak = v;
                peak_time = t;
            }
            if v.abs() > EPS {
                lo_idx.get_or_insert(i);
                hi_idx = Some(i);
            }
        }
        let (support_lo, support_hi) = match (lo_idx, hi_idx) {
            (Some(lo), Some(hi)) => {
                // Outside the breakpoints flanking the outermost
                // above-EPS values the curve (with its constant
                // extensions) stays within EPS of zero — unless the tail
                // value itself is above EPS, where the extension keeps it
                // there forever.
                let l = if lo == 0 { f64::NEG_INFINITY } else { pts[lo - 1].0 };
                let h = if hi == pts.len() - 1 { f64::INFINITY } else { pts[hi + 1].0 };
                (l, h)
            }
            // Identically (near-)zero curve: empty support.
            _ => (f64::INFINITY, f64::NEG_INFINITY),
        };
        Self { curve, peak, peak_time, support_lo, support_hi }
    }

    /// The identically-zero envelope (no noise).
    #[must_use]
    pub fn zero() -> Self {
        Self::from_raw(Pwl::zero())
    }

    /// Builds the trapezoidal envelope of an aggressor whose switching
    /// instant sweeps the timing window `[eat, lat]`.
    ///
    /// The result is the aggressor's pulse aligned at `eat`, the same pulse
    /// aligned at `lat`, with the two peaks connected — a triangle when
    /// `eat == lat`, a flat-topped trapezoid otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `eat > lat`.
    #[must_use]
    pub fn from_window(pulse: &NoisePulse, eat: f64, lat: f64) -> Self {
        assert!(eat <= lat, "EAT {eat} must not exceed LAT {lat}");
        let early = pulse.shifted(eat);
        let late = pulse.shifted(lat);
        let pts = vec![
            (early.start(), 0.0),
            (early.peak_time(), pulse.peak()),
            (late.peak_time(), pulse.peak()),
            (late.end(), 0.0),
        ];
        Self::from_raw(Pwl::new(pts).expect("window corners are ordered"))
    }

    /// Builds the envelope of an aggressor switching at a single known
    /// instant (a degenerate window).
    #[must_use]
    pub fn from_pulse(pulse: &NoisePulse) -> Self {
        Self::from_window(pulse, 0.0, 0.0)
    }

    /// Wraps an arbitrary non-negative curve as an envelope.
    ///
    /// Negative excursions smaller than [`EPS`] are clamped to zero; the
    /// curve must decay to (near) zero at both ends so the implicit
    /// constant extension is zero. Used for *pseudo input aggressors*
    /// (§3.1), whose shape is the difference of a noisy and a noiseless
    /// victim transition.
    ///
    /// # Panics
    ///
    /// Panics if the curve ends above `tolerance` at either extreme (such a
    /// curve would represent noise that never decays) where `tolerance` is
    /// `1e-6`.
    #[must_use]
    pub fn from_curve(curve: &Pwl) -> Self {
        const TAIL_TOL: f64 = 1e-6;
        let pts = curve.points();
        let first = pts[0].1;
        let last = pts[pts.len() - 1].1;
        assert!(
            first.abs() <= TAIL_TOL && last.abs() <= TAIL_TOL,
            "envelope curve must decay to zero at both ends (got {first} and {last})"
        );
        let mut clamped = curve.clamped_min(0.0);
        // Pin the extremes exactly at zero so extensions are zero.
        let mut p = clamped.points().to_vec();
        if let Some(f) = p.first_mut() {
            f.1 = 0.0;
        }
        if let Some(l) = p.last_mut() {
            l.1 = 0.0;
        }
        clamped = Pwl::new(p).expect("clamped points remain ordered");
        Self::from_raw(clamped)
    }

    /// Wraps an arbitrary curve as an envelope **without any validation**.
    ///
    /// Unlike [`from_curve`](Self::from_curve) this performs no clamping,
    /// tail pinning or decay checks, so the result may violate every
    /// envelope invariant (non-negativity, zero tails). The cached bounds
    /// are still computed honestly from the curve. Intended only for
    /// IR-level tooling — in particular the `dna-lint` verifier's known-bad
    /// test corpus, which exercises the `L023` envelope-malformed rule.
    #[must_use]
    pub fn from_pwl_unchecked(curve: Pwl) -> Self {
        Self::from_raw(curve)
    }

    /// Builds an envelope with **caller-supplied cached bounds**, bypassing
    /// the one-scan bound computation every checked constructor performs.
    ///
    /// Nothing validates that `peak`, `peak_time` and the support interval
    /// agree with `curve`, so the dominance prefilter
    /// ([`may_encapsulate`](Self::may_encapsulate)) can be driven to wrong
    /// answers. Intended only for IR-level tooling — the `dna-lint` rule
    /// `L025` (stale envelope cache) exists to catch exactly such values,
    /// and its known-bad test corpus is built through this constructor.
    #[must_use]
    pub fn with_cached_bounds_unchecked(
        curve: Pwl,
        peak: f64,
        peak_time: f64,
        support_lo: f64,
        support_hi: f64,
    ) -> Self {
        Self { curve, peak, peak_time, support_lo, support_hi }
    }

    /// Whether the cached peak/support bounds agree with the underlying
    /// curve — always true for envelopes from checked constructors; only
    /// [`with_cached_bounds_unchecked`](Self::with_cached_bounds_unchecked)
    /// can produce a stale cache. Backs the lint rule `L025`.
    #[must_use]
    pub fn cache_is_consistent(&self) -> bool {
        let honest = Self::from_raw(self.curve.clone());
        let same = |a: f64, b: f64| a == b || (a.is_nan() && b.is_nan());
        same(self.peak, honest.peak)
            && same(self.peak_time, honest.peak_time)
            && same(self.support_lo, honest.support_lo)
            && same(self.support_hi, honest.support_hi)
    }

    /// The underlying piecewise-linear curve.
    #[must_use]
    pub fn as_pwl(&self) -> &Pwl {
        &self.curve
    }

    /// Envelope magnitude at time `t`.
    #[must_use]
    pub fn eval(&self, t: f64) -> f64 {
        self.curve.eval(t)
    }

    /// Maximum magnitude of the envelope. Cached at construction — O(1).
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.peak.max(0.0)
    }

    /// Time at which the cached [`peak`](Self::peak) is first attained.
    #[must_use]
    pub fn peak_time(&self) -> f64 {
        self.peak_time
    }

    /// Cached support lower bound: for `t < support_lo()` the envelope is
    /// within [`EPS`] of zero. `f64::INFINITY` for a zero envelope (empty
    /// support), `f64::NEG_INFINITY` when the left tail never decays
    /// (possible only through unchecked constructors).
    #[must_use]
    pub fn support_lo(&self) -> f64 {
        self.support_lo
    }

    /// Cached support upper bound, mirror of [`support_lo`](Self::support_lo).
    #[must_use]
    pub fn support_hi(&self) -> f64 {
        self.support_hi
    }

    /// Maximum magnitude within `interval`.
    #[must_use]
    pub fn peak_over(&self, interval: TimeInterval) -> f64 {
        self.curve.max_over(interval).max(0.0)
    }

    /// Breakpoint span of the envelope (its support is contained in it).
    #[must_use]
    pub fn span(&self) -> TimeInterval {
        self.curve.span()
    }

    /// Whether the envelope is identically zero (peak below [`EPS`]).
    /// O(1) via the cached peak.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.peak() <= EPS
    }

    /// Pointwise sum of two envelopes (combined envelope, Fig. 3).
    ///
    /// Redundant (collinear within [`EPS`]) breakpoints are pruned so that
    /// long chains of sums — the hot loop of top-k enumeration — do not
    /// accumulate unbounded point counts. Runs as a single fused
    /// merge-add-simplify pass with one output allocation
    /// ([`Pwl::add_simplified`]).
    #[must_use]
    pub fn sum(&self, other: &Envelope) -> Envelope {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        Envelope::from_raw(self.curve.add_simplified(&other.curve, EPS))
    }

    /// Combined envelope of an arbitrary collection, owned or borrowed —
    /// the iterator is consumed directly, no intermediate collection
    /// needed.
    #[must_use]
    pub fn sum_all<I>(envelopes: I) -> Envelope
    where
        I: IntoIterator,
        I::Item: Borrow<Envelope>,
    {
        envelopes.into_iter().fold(Envelope::zero(), |acc, e| acc.sum(e.borrow()))
    }

    /// `max(self - other, 0)` pointwise.
    ///
    /// Elimination-set analysis (§3.4) subtracts a candidate set's envelope
    /// from the *total* noise envelope before superposition; the residual
    /// can never be negative noise. Runs as a single fused
    /// merge-sub-clamp-simplify pass ([`Pwl::sub_clamped_simplified`]).
    #[must_use]
    pub fn saturating_sub(&self, other: &Envelope) -> Envelope {
        if other.is_zero() {
            return self.clone();
        }
        Envelope::from_raw(self.curve.sub_clamped_simplified(&other.curve, EPS))
    }

    /// The envelope translated by `dt`.
    #[must_use]
    pub fn shifted(&self, dt: f64) -> Envelope {
        Envelope::from_raw(self.curve.shifted(dt))
    }

    /// The envelope with its magnitude scaled by `factor >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Envelope {
        assert!(factor >= 0.0, "envelope scale factor must be non-negative");
        Envelope::from_raw(self.curve.scaled(factor))
    }

    /// The envelope zeroed outside `interval`.
    ///
    /// Delay-noise analysis only cares about an envelope inside the
    /// victim's analysis window (from the start of the victim transition
    /// to the upper-bound noisy crossing): clipping keeps the point count
    /// of repeated envelope algebra proportional to the couplings that can
    /// actually matter. Clipping is *sound* only when `interval` covers
    /// that analysis window — the caller guarantees it.
    #[must_use]
    pub fn clipped(&self, interval: TimeInterval) -> Envelope {
        let span = self.curve.span();
        if span.lo() >= interval.lo() && span.hi() <= interval.hi() {
            return self.clone();
        }
        if !span.overlaps(interval) || self.peak_over(interval) <= EPS {
            return Envelope::zero();
        }
        const RAMP: f64 = 1e-6;
        let mut pts: Vec<(f64, f64)> = Vec::new();
        let v_lo = self.eval(interval.lo());
        if v_lo > 0.0 {
            pts.push((interval.lo() - RAMP, 0.0));
        }
        pts.push((interval.lo(), v_lo));
        for &(t, v) in self.curve.points() {
            if t > interval.lo() && t < interval.hi() {
                pts.push((t, v));
            }
        }
        let v_hi = self.eval(interval.hi());
        pts.push((interval.hi(), v_hi));
        if v_hi > 0.0 {
            pts.push((interval.hi() + RAMP, 0.0));
        }
        Envelope::from_raw(Pwl::new(pts).expect("clipped points stay ordered"))
    }

    /// O(1) necessary condition for `self.encapsulates(other, interval)`,
    /// using only the cached peak/support bounds — the dominance
    /// prefilter. A `false` return is a **proof** that full encapsulation
    /// is impossible; `true` means "plausible, run the PWL comparison".
    ///
    /// Soundness: let `t*` be `other`'s cached peak time and `p` its peak.
    /// When `p > EPS` and `t* ∈ interval`, encapsulation requires
    /// `self(t*) >= p - EPS`, hence `self.peak() >= p - EPS`. And if `t*`
    /// lies outside `self`'s support, `self(t*) <= EPS`, so `p <= 2·EPS`
    /// would be forced. Either bound failing rules encapsulation out.
    #[must_use]
    pub fn may_encapsulate(&self, other: &Envelope, interval: TimeInterval) -> bool {
        let p = other.peak();
        if p <= EPS {
            // Encapsulating a (near-)zero envelope is always plausible.
            return true;
        }
        let t = other.peak_time;
        if !interval.contains(t) {
            // The witness point is outside the interval; no cheap bound.
            return true;
        }
        if self.peak() < p - EPS {
            return false;
        }
        if p > 2.0 * EPS && (t < self.support_lo || t > self.support_hi) {
            return false;
        }
        true
    }

    /// Whether this envelope *encapsulates* `other` over `interval`:
    /// `self(t) >= other(t) - EPS` for all `t` in the interval.
    ///
    /// This is the primitive behind the paper's **dominance** relation
    /// (§3.2): aggressor (set) A dominates B when A's combined envelope
    /// encapsulates B's over the dominance interval. Encapsulation is
    /// reflexive and transitive but only a *partial* order — two envelopes
    /// can be mutually non-encapsulating.
    #[must_use]
    pub fn encapsulates(&self, other: &Envelope, interval: TimeInterval) -> bool {
        self.curve.ge_over(&other.curve, interval, EPS)
    }
}

impl Default for Envelope {
    fn default() -> Self {
        Self::zero()
    }
}

impl fmt::Display for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "envelope peak={:.4} span={}", self.peak(), self.span())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulse() -> NoisePulse {
        NoisePulse::new(0.0, 2.0, 0.4, 6.0)
    }

    #[test]
    fn window_envelope_is_trapezoid() {
        let e = Envelope::from_window(&pulse(), 10.0, 20.0);
        // Leading edge follows the EAT-aligned pulse.
        assert_eq!(e.eval(10.0), 0.0);
        assert!((e.eval(11.0) - 0.2).abs() < 1e-12);
        // Flat top between peaks at 12 and 22.
        assert!((e.eval(12.0) - 0.4).abs() < 1e-12);
        assert!((e.eval(17.0) - 0.4).abs() < 1e-12);
        assert!((e.eval(22.0) - 0.4).abs() < 1e-12);
        // Trailing edge follows the LAT-aligned pulse, ending at 26.
        assert!((e.eval(24.0) - 0.2).abs() < 1e-12);
        assert_eq!(e.eval(26.0), 0.0);
        assert_eq!(e.eval(30.0), 0.0);
    }

    #[test]
    fn degenerate_window_is_triangle() {
        let e = Envelope::from_window(&pulse(), 5.0, 5.0);
        let p = pulse().shifted(5.0);
        for i in 0..=30 {
            let t = i as f64 * 0.5;
            assert!((e.eval(t) - p.eval(t)).abs() < 1e-9, "mismatch at {t}");
        }
    }

    #[test]
    fn sum_is_pointwise() {
        let a = Envelope::from_window(&pulse(), 0.0, 0.0);
        let b = Envelope::from_window(&pulse(), 1.0, 1.0);
        let s = a.sum(&b);
        for i in 0..=40 {
            let t = i as f64 * 0.25;
            assert!((s.eval(t) - (a.eval(t) + b.eval(t))).abs() < 1e-9);
        }
    }

    #[test]
    fn sum_with_zero_is_identity() {
        let a = Envelope::from_window(&pulse(), 0.0, 4.0);
        assert_eq!(a.sum(&Envelope::zero()), a);
        assert_eq!(Envelope::zero().sum(&a), a);
    }

    #[test]
    fn sum_all_accumulates() {
        let envs: Vec<Envelope> =
            (0..3).map(|i| Envelope::from_window(&pulse(), i as f64, i as f64)).collect();
        let total = Envelope::sum_all(&envs);
        let manual = envs[0].sum(&envs[1]).sum(&envs[2]);
        for i in 0..=40 {
            let t = i as f64 * 0.25;
            assert!((total.eval(t) - manual.eval(t)).abs() < 1e-9);
        }
    }

    #[test]
    fn saturating_sub_never_negative() {
        let big = Envelope::from_window(&pulse(), 0.0, 10.0);
        let small = Envelope::from_window(&pulse(), 2.0, 4.0);
        let d = big.saturating_sub(&small);
        for i in 0..=80 {
            let t = i as f64 * 0.25;
            assert!(d.eval(t) >= 0.0);
        }
        // Subtracting something bigger floors at zero.
        let z = small.saturating_sub(&big.scaled(2.0));
        assert!(z.peak() <= 0.4); // clamped, not negative
        for i in 0..=80 {
            let t = i as f64 * 0.25;
            assert!(z.eval(t) >= 0.0);
        }
    }

    #[test]
    fn encapsulation_partial_order() {
        let iv = TimeInterval::new(-5.0, 40.0);
        let wide = Envelope::from_window(&pulse(), 0.0, 20.0);
        let narrow = Envelope::from_window(&pulse(), 5.0, 10.0);
        assert!(wide.encapsulates(&narrow, iv));
        assert!(!narrow.encapsulates(&wide, iv));
        // Reflexive.
        assert!(wide.encapsulates(&wide, iv));
        // Mutually non-dominated pair: same shape, disjoint supports.
        let left = Envelope::from_window(&pulse(), 0.0, 0.0);
        let right = Envelope::from_window(&pulse(), 100.0, 100.0);
        assert!(!left.encapsulates(&right, TimeInterval::new(-5.0, 120.0)));
        assert!(!right.encapsulates(&left, TimeInterval::new(-5.0, 120.0)));
    }

    #[test]
    fn zero_envelope_properties() {
        let z = Envelope::zero();
        assert!(z.is_zero());
        assert_eq!(z.peak(), 0.0);
        assert_eq!(z.eval(123.0), 0.0);
        assert_eq!(Envelope::default(), z);
    }

    #[test]
    fn from_curve_clamps_and_pins_tails() {
        let p = Pwl::new(vec![(0.0, 0.0), (2.0, -1e-12), (4.0, 0.3), (8.0, 0.0)]).unwrap();
        let e = Envelope::from_curve(&p);
        assert!(e.eval(2.0) >= 0.0);
        assert!((e.peak() - 0.3).abs() < 1e-9);
        assert_eq!(e.eval(100.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "decay to zero")]
    fn from_curve_rejects_nonzero_tail() {
        let p = Pwl::new(vec![(0.0, 0.0), (4.0, 0.3)]).unwrap();
        let _ = Envelope::from_curve(&p);
    }

    #[test]
    fn clipped_matches_inside_zero_outside() {
        let e = Envelope::from_window(&pulse(), 0.0, 30.0);
        let iv = TimeInterval::new(5.0, 20.0);
        let c = e.clipped(iv);
        for i in 0..=80 {
            let t = i as f64 * 0.5;
            if (5.0 + 1e-5..=20.0 - 1e-5).contains(&t) {
                assert!((c.eval(t) - e.eval(t)).abs() < 1e-9, "inside mismatch at {t}");
            } else if !(5.0 - 1e-5..=20.0 + 1e-5).contains(&t) {
                assert_eq!(c.eval(t), 0.0, "outside not zero at {t}");
            }
        }
        // Fully-contained envelopes are returned unchanged.
        let tight = Envelope::from_window(&pulse(), 8.0, 10.0);
        assert_eq!(tight.clipped(TimeInterval::new(0.0, 100.0)), tight);
        // Disjoint windows clip to zero.
        assert!(e.clipped(TimeInterval::new(500.0, 600.0)).is_zero());
    }

    #[test]
    fn cached_bounds_agree_with_curve() {
        let e = Envelope::from_window(&pulse(), 10.0, 20.0);
        assert_eq!(e.peak(), e.as_pwl().max_value().max(0.0));
        assert!((e.eval(e.peak_time()) - e.peak()).abs() < 1e-12);
        // Support bounds: within EPS of zero strictly outside them.
        assert!(e.eval(e.support_lo() - 1.0) <= EPS);
        assert!(e.eval(e.support_hi() + 1.0) <= EPS);
        assert!(e.support_lo() < e.support_hi());
        assert!(e.cache_is_consistent());
        // Algebra results keep honest caches too.
        let s = e.sum(&Envelope::from_window(&pulse(), 12.0, 14.0));
        assert!(s.cache_is_consistent());
        let d = s.saturating_sub(&e);
        assert!(d.cache_is_consistent());
        let c = e.clipped(TimeInterval::new(12.0, 18.0));
        assert!(c.cache_is_consistent());
        assert!(e.shifted(3.0).cache_is_consistent());
        assert!(e.scaled(0.5).cache_is_consistent());
    }

    #[test]
    fn zero_envelope_has_empty_support() {
        let z = Envelope::zero();
        assert_eq!(z.support_lo(), f64::INFINITY);
        assert_eq!(z.support_hi(), f64::NEG_INFINITY);
        assert!(z.cache_is_consistent());
    }

    #[test]
    fn stale_cache_is_detected() {
        let honest = Envelope::from_window(&pulse(), 0.0, 5.0);
        let stale = Envelope::with_cached_bounds_unchecked(
            honest.as_pwl().clone(),
            honest.peak() * 2.0, // lies about the peak
            honest.peak_time(),
            honest.support_lo(),
            honest.support_hi(),
        );
        assert!(!stale.cache_is_consistent());
        // Equality ignores the cache: the curves are identical.
        assert_eq!(stale, honest);
    }

    #[test]
    fn may_encapsulate_never_rejects_true_encapsulation() {
        let iv = TimeInterval::new(-5.0, 40.0);
        let wide = Envelope::from_window(&pulse(), 0.0, 20.0);
        let narrow = Envelope::from_window(&pulse(), 5.0, 10.0);
        // Prefilter must pass everything encapsulates() accepts.
        assert!(wide.may_encapsulate(&narrow, iv));
        assert!(wide.may_encapsulate(&wide, iv));
        assert!(wide.may_encapsulate(&Envelope::zero(), iv));
        assert!(Envelope::zero().may_encapsulate(&Envelope::zero(), iv));
    }

    #[test]
    fn may_encapsulate_rejects_impossible_pairs() {
        // Lower peak can never encapsulate a higher one whose peak time
        // lies inside the interval.
        let tall = Envelope::from_window(&pulse(), 5.0, 10.0);
        let short = tall.scaled(0.25);
        let iv = TimeInterval::new(-5.0, 40.0);
        assert!(!short.may_encapsulate(&tall, iv));
        assert!(!short.encapsulates(&tall, iv));
        // Disjoint supports: probe's peak time is outside self's support.
        let left = Envelope::from_window(&pulse(), 0.0, 0.0);
        let right = Envelope::from_window(&pulse(), 100.0, 100.0);
        let big_iv = TimeInterval::new(-5.0, 120.0);
        assert!(!left.may_encapsulate(&right, big_iv));
        assert!(!left.encapsulates(&right, big_iv));
        // Probe peak outside the interval: prefilter stays conservative.
        let outside_iv = TimeInterval::new(50.0, 60.0);
        assert!(left.may_encapsulate(&right, outside_iv));
    }

    #[test]
    fn sum_all_accepts_owned_iterator() {
        let total =
            Envelope::sum_all((0..3).map(|i| Envelope::from_window(&pulse(), i as f64, i as f64)));
        let by_ref: Vec<Envelope> =
            (0..3).map(|i| Envelope::from_window(&pulse(), i as f64, i as f64)).collect();
        assert_eq!(total, Envelope::sum_all(&by_ref));
    }

    #[test]
    fn peak_over_interval() {
        let e = Envelope::from_window(&pulse(), 10.0, 20.0);
        assert!((e.peak_over(TimeInterval::new(0.0, 30.0)) - 0.4).abs() < 1e-12);
        assert!(e.peak_over(TimeInterval::new(0.0, 10.5)) < 0.4);
    }
}
