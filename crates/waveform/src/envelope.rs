//! Trapezoidal noise envelopes (paper Fig. 2 and Fig. 3).

use std::fmt;

use crate::{NoisePulse, Pwl, TimeInterval, EPS};

/// A noise envelope: an upper bound on the noise an aggressor (or a set of
/// aggressors) can couple onto a victim at every instant.
///
/// Per §2 of the paper, the *trapezoidal* envelope of a single aggressor is
/// built by placing the aggressor's noise pulse at its earliest arrival
/// time (EAT) and at its latest arrival time (LAT) and connecting the two
/// peaks ([`Envelope::from_window`]). Envelopes of multiple aggressors are
/// added pointwise to form a *combined* envelope ([`Envelope::sum`],
/// Fig. 3).
///
/// Invariants: values are non-negative everywhere, and the envelope decays
/// to zero at both ends of its breakpoint list (so the constant extension
/// of the underlying [`Pwl`] is zero).
///
/// # Example
///
/// ```
/// use dna_waveform::{NoisePulse, Envelope};
///
/// let pulse = NoisePulse::symmetric(0.0, 0.2, 4.0);
/// let env = Envelope::from_window(&pulse, 10.0, 20.0);
/// // Flat top between the two peak positions.
/// assert_eq!(env.eval(12.0), 0.2);
/// assert_eq!(env.eval(22.0), 0.2);
/// assert_eq!(env.peak(), 0.2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    curve: Pwl,
}

impl Envelope {
    /// The identically-zero envelope (no noise).
    #[must_use]
    pub fn zero() -> Self {
        Self { curve: Pwl::zero() }
    }

    /// Builds the trapezoidal envelope of an aggressor whose switching
    /// instant sweeps the timing window `[eat, lat]`.
    ///
    /// The result is the aggressor's pulse aligned at `eat`, the same pulse
    /// aligned at `lat`, with the two peaks connected — a triangle when
    /// `eat == lat`, a flat-topped trapezoid otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `eat > lat`.
    #[must_use]
    pub fn from_window(pulse: &NoisePulse, eat: f64, lat: f64) -> Self {
        assert!(eat <= lat, "EAT {eat} must not exceed LAT {lat}");
        let early = pulse.shifted(eat);
        let late = pulse.shifted(lat);
        let pts = vec![
            (early.start(), 0.0),
            (early.peak_time(), pulse.peak()),
            (late.peak_time(), pulse.peak()),
            (late.end(), 0.0),
        ];
        Self { curve: Pwl::new(pts).expect("window corners are ordered") }
    }

    /// Builds the envelope of an aggressor switching at a single known
    /// instant (a degenerate window).
    #[must_use]
    pub fn from_pulse(pulse: &NoisePulse) -> Self {
        Self::from_window(pulse, 0.0, 0.0)
    }

    /// Wraps an arbitrary non-negative curve as an envelope.
    ///
    /// Negative excursions smaller than [`EPS`] are clamped to zero; the
    /// curve must decay to (near) zero at both ends so the implicit
    /// constant extension is zero. Used for *pseudo input aggressors*
    /// (§3.1), whose shape is the difference of a noisy and a noiseless
    /// victim transition.
    ///
    /// # Panics
    ///
    /// Panics if the curve ends above `tolerance` at either extreme (such a
    /// curve would represent noise that never decays) where `tolerance` is
    /// `1e-6`.
    #[must_use]
    pub fn from_curve(curve: &Pwl) -> Self {
        const TAIL_TOL: f64 = 1e-6;
        let pts = curve.points();
        let first = pts[0].1;
        let last = pts[pts.len() - 1].1;
        assert!(
            first.abs() <= TAIL_TOL && last.abs() <= TAIL_TOL,
            "envelope curve must decay to zero at both ends (got {first} and {last})"
        );
        let mut clamped = curve.clamped_min(0.0);
        // Pin the extremes exactly at zero so extensions are zero.
        let mut p = clamped.points().to_vec();
        if let Some(f) = p.first_mut() {
            f.1 = 0.0;
        }
        if let Some(l) = p.last_mut() {
            l.1 = 0.0;
        }
        clamped = Pwl::new(p).expect("clamped points remain ordered");
        Self { curve: clamped }
    }

    /// Wraps an arbitrary curve as an envelope **without any validation**.
    ///
    /// Unlike [`from_curve`](Self::from_curve) this performs no clamping,
    /// tail pinning or decay checks, so the result may violate every
    /// envelope invariant (non-negativity, zero tails). Intended only for
    /// IR-level tooling — in particular the `dna-lint` verifier's known-bad
    /// test corpus, which exercises the `L023` envelope-malformed rule.
    #[must_use]
    pub fn from_pwl_unchecked(curve: Pwl) -> Self {
        Self { curve }
    }

    /// The underlying piecewise-linear curve.
    #[must_use]
    pub fn as_pwl(&self) -> &Pwl {
        &self.curve
    }

    /// Envelope magnitude at time `t`.
    #[must_use]
    pub fn eval(&self, t: f64) -> f64 {
        self.curve.eval(t)
    }

    /// Maximum magnitude of the envelope.
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.curve.max_value().max(0.0)
    }

    /// Maximum magnitude within `interval`.
    #[must_use]
    pub fn peak_over(&self, interval: TimeInterval) -> f64 {
        self.curve.max_over(interval).max(0.0)
    }

    /// Breakpoint span of the envelope (its support is contained in it).
    #[must_use]
    pub fn span(&self) -> TimeInterval {
        self.curve.span()
    }

    /// Whether the envelope is identically zero (peak below [`EPS`]).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.peak() <= EPS
    }

    /// Pointwise sum of two envelopes (combined envelope, Fig. 3).
    ///
    /// Redundant (collinear within [`EPS`]) breakpoints are pruned so that
    /// long chains of sums — the hot loop of top-k enumeration — do not
    /// accumulate unbounded point counts.
    #[must_use]
    pub fn sum(&self, other: &Envelope) -> Envelope {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        Envelope { curve: (&self.curve + &other.curve).simplified(EPS) }
    }

    /// Combined envelope of an arbitrary collection.
    #[must_use]
    pub fn sum_all<'a, I>(envelopes: I) -> Envelope
    where
        I: IntoIterator<Item = &'a Envelope>,
    {
        envelopes.into_iter().fold(Envelope::zero(), |acc, e| acc.sum(e))
    }

    /// `max(self - other, 0)` pointwise.
    ///
    /// Elimination-set analysis (§3.4) subtracts a candidate set's envelope
    /// from the *total* noise envelope before superposition; the residual
    /// can never be negative noise.
    #[must_use]
    pub fn saturating_sub(&self, other: &Envelope) -> Envelope {
        if other.is_zero() {
            return self.clone();
        }
        Envelope { curve: (&self.curve - &other.curve).clamped_min(0.0).simplified(EPS) }
    }

    /// The envelope translated by `dt`.
    #[must_use]
    pub fn shifted(&self, dt: f64) -> Envelope {
        Envelope { curve: self.curve.shifted(dt) }
    }

    /// The envelope with its magnitude scaled by `factor >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Envelope {
        assert!(factor >= 0.0, "envelope scale factor must be non-negative");
        Envelope { curve: self.curve.scaled(factor) }
    }

    /// The envelope zeroed outside `interval`.
    ///
    /// Delay-noise analysis only cares about an envelope inside the
    /// victim's analysis window (from the start of the victim transition
    /// to the upper-bound noisy crossing): clipping keeps the point count
    /// of repeated envelope algebra proportional to the couplings that can
    /// actually matter. Clipping is *sound* only when `interval` covers
    /// that analysis window — the caller guarantees it.
    #[must_use]
    pub fn clipped(&self, interval: TimeInterval) -> Envelope {
        let span = self.curve.span();
        if span.lo() >= interval.lo() && span.hi() <= interval.hi() {
            return self.clone();
        }
        if !span.overlaps(interval) || self.peak_over(interval) <= EPS {
            return Envelope::zero();
        }
        const RAMP: f64 = 1e-6;
        let mut pts: Vec<(f64, f64)> = Vec::new();
        let v_lo = self.eval(interval.lo());
        if v_lo > 0.0 {
            pts.push((interval.lo() - RAMP, 0.0));
        }
        pts.push((interval.lo(), v_lo));
        for &(t, v) in self.curve.points() {
            if t > interval.lo() && t < interval.hi() {
                pts.push((t, v));
            }
        }
        let v_hi = self.eval(interval.hi());
        pts.push((interval.hi(), v_hi));
        if v_hi > 0.0 {
            pts.push((interval.hi() + RAMP, 0.0));
        }
        Envelope { curve: Pwl::new(pts).expect("clipped points stay ordered") }
    }

    /// Whether this envelope *encapsulates* `other` over `interval`:
    /// `self(t) >= other(t) - EPS` for all `t` in the interval.
    ///
    /// This is the primitive behind the paper's **dominance** relation
    /// (§3.2): aggressor (set) A dominates B when A's combined envelope
    /// encapsulates B's over the dominance interval. Encapsulation is
    /// reflexive and transitive but only a *partial* order — two envelopes
    /// can be mutually non-encapsulating.
    #[must_use]
    pub fn encapsulates(&self, other: &Envelope, interval: TimeInterval) -> bool {
        self.curve.ge_over(&other.curve, interval, EPS)
    }
}

impl Default for Envelope {
    fn default() -> Self {
        Self::zero()
    }
}

impl fmt::Display for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "envelope peak={:.4} span={}", self.peak(), self.span())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulse() -> NoisePulse {
        NoisePulse::new(0.0, 2.0, 0.4, 6.0)
    }

    #[test]
    fn window_envelope_is_trapezoid() {
        let e = Envelope::from_window(&pulse(), 10.0, 20.0);
        // Leading edge follows the EAT-aligned pulse.
        assert_eq!(e.eval(10.0), 0.0);
        assert!((e.eval(11.0) - 0.2).abs() < 1e-12);
        // Flat top between peaks at 12 and 22.
        assert!((e.eval(12.0) - 0.4).abs() < 1e-12);
        assert!((e.eval(17.0) - 0.4).abs() < 1e-12);
        assert!((e.eval(22.0) - 0.4).abs() < 1e-12);
        // Trailing edge follows the LAT-aligned pulse, ending at 26.
        assert!((e.eval(24.0) - 0.2).abs() < 1e-12);
        assert_eq!(e.eval(26.0), 0.0);
        assert_eq!(e.eval(30.0), 0.0);
    }

    #[test]
    fn degenerate_window_is_triangle() {
        let e = Envelope::from_window(&pulse(), 5.0, 5.0);
        let p = pulse().shifted(5.0);
        for i in 0..=30 {
            let t = i as f64 * 0.5;
            assert!((e.eval(t) - p.eval(t)).abs() < 1e-9, "mismatch at {t}");
        }
    }

    #[test]
    fn sum_is_pointwise() {
        let a = Envelope::from_window(&pulse(), 0.0, 0.0);
        let b = Envelope::from_window(&pulse(), 1.0, 1.0);
        let s = a.sum(&b);
        for i in 0..=40 {
            let t = i as f64 * 0.25;
            assert!((s.eval(t) - (a.eval(t) + b.eval(t))).abs() < 1e-9);
        }
    }

    #[test]
    fn sum_with_zero_is_identity() {
        let a = Envelope::from_window(&pulse(), 0.0, 4.0);
        assert_eq!(a.sum(&Envelope::zero()), a);
        assert_eq!(Envelope::zero().sum(&a), a);
    }

    #[test]
    fn sum_all_accumulates() {
        let envs: Vec<Envelope> =
            (0..3).map(|i| Envelope::from_window(&pulse(), i as f64, i as f64)).collect();
        let total = Envelope::sum_all(&envs);
        let manual = envs[0].sum(&envs[1]).sum(&envs[2]);
        for i in 0..=40 {
            let t = i as f64 * 0.25;
            assert!((total.eval(t) - manual.eval(t)).abs() < 1e-9);
        }
    }

    #[test]
    fn saturating_sub_never_negative() {
        let big = Envelope::from_window(&pulse(), 0.0, 10.0);
        let small = Envelope::from_window(&pulse(), 2.0, 4.0);
        let d = big.saturating_sub(&small);
        for i in 0..=80 {
            let t = i as f64 * 0.25;
            assert!(d.eval(t) >= 0.0);
        }
        // Subtracting something bigger floors at zero.
        let z = small.saturating_sub(&big.scaled(2.0));
        assert!(z.peak() <= 0.4); // clamped, not negative
        for i in 0..=80 {
            let t = i as f64 * 0.25;
            assert!(z.eval(t) >= 0.0);
        }
    }

    #[test]
    fn encapsulation_partial_order() {
        let iv = TimeInterval::new(-5.0, 40.0);
        let wide = Envelope::from_window(&pulse(), 0.0, 20.0);
        let narrow = Envelope::from_window(&pulse(), 5.0, 10.0);
        assert!(wide.encapsulates(&narrow, iv));
        assert!(!narrow.encapsulates(&wide, iv));
        // Reflexive.
        assert!(wide.encapsulates(&wide, iv));
        // Mutually non-dominated pair: same shape, disjoint supports.
        let left = Envelope::from_window(&pulse(), 0.0, 0.0);
        let right = Envelope::from_window(&pulse(), 100.0, 100.0);
        assert!(!left.encapsulates(&right, TimeInterval::new(-5.0, 120.0)));
        assert!(!right.encapsulates(&left, TimeInterval::new(-5.0, 120.0)));
    }

    #[test]
    fn zero_envelope_properties() {
        let z = Envelope::zero();
        assert!(z.is_zero());
        assert_eq!(z.peak(), 0.0);
        assert_eq!(z.eval(123.0), 0.0);
        assert_eq!(Envelope::default(), z);
    }

    #[test]
    fn from_curve_clamps_and_pins_tails() {
        let p = Pwl::new(vec![(0.0, 0.0), (2.0, -1e-12), (4.0, 0.3), (8.0, 0.0)]).unwrap();
        let e = Envelope::from_curve(&p);
        assert!(e.eval(2.0) >= 0.0);
        assert!((e.peak() - 0.3).abs() < 1e-9);
        assert_eq!(e.eval(100.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "decay to zero")]
    fn from_curve_rejects_nonzero_tail() {
        let p = Pwl::new(vec![(0.0, 0.0), (4.0, 0.3)]).unwrap();
        let _ = Envelope::from_curve(&p);
    }

    #[test]
    fn clipped_matches_inside_zero_outside() {
        let e = Envelope::from_window(&pulse(), 0.0, 30.0);
        let iv = TimeInterval::new(5.0, 20.0);
        let c = e.clipped(iv);
        for i in 0..=80 {
            let t = i as f64 * 0.5;
            if (5.0 + 1e-5..=20.0 - 1e-5).contains(&t) {
                assert!((c.eval(t) - e.eval(t)).abs() < 1e-9, "inside mismatch at {t}");
            } else if !(5.0 - 1e-5..=20.0 + 1e-5).contains(&t) {
                assert_eq!(c.eval(t), 0.0, "outside not zero at {t}");
            }
        }
        // Fully-contained envelopes are returned unchanged.
        let tight = Envelope::from_window(&pulse(), 8.0, 10.0);
        assert_eq!(tight.clipped(TimeInterval::new(0.0, 100.0)), tight);
        // Disjoint windows clip to zero.
        assert!(e.clipped(TimeInterval::new(500.0, 600.0)).is_zero());
    }

    #[test]
    fn peak_over_interval() {
        let e = Envelope::from_window(&pulse(), 10.0, 20.0);
        assert!((e.peak_over(TimeInterval::new(0.0, 30.0)) - 0.4).abs() < 1e-12);
        assert!(e.peak_over(TimeInterval::new(0.0, 10.5)) < 0.4);
    }
}
