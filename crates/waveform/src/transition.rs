//! Switching transitions modeled as saturated ramps.

use std::fmt;

use crate::{Pwl, EPS};

/// Direction of a switching transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// Transition from 0 to Vdd.
    Rising,
    /// Transition from Vdd to 0.
    Falling,
}

impl Edge {
    /// The opposite edge.
    #[must_use]
    pub fn flipped(self) -> Edge {
        match self {
            Edge::Rising => Edge::Falling,
            Edge::Falling => Edge::Rising,
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Edge::Rising => write!(f, "rise"),
            Edge::Falling => write!(f, "fall"),
        }
    }
}

/// A saturated-ramp switching waveform.
///
/// The waveform starts switching at `start`, swings the full rail over
/// `slew` time units and then saturates. The 50 %-Vdd instant — the `t50`
/// the paper measures all arrival times and delay noise against — is
/// `start + slew / 2`.
///
/// # Example
///
/// ```
/// use dna_waveform::{Transition, Edge};
///
/// let t = Transition::new(100.0, 20.0, Edge::Rising);
/// assert_eq!(t.t50(), 110.0);
/// assert_eq!(t.eval(100.0), 0.0);
/// assert_eq!(t.eval(110.0), 0.5);
/// assert_eq!(t.eval(140.0), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    start: f64,
    slew: f64,
    edge: Edge,
}

impl Transition {
    /// Creates a transition that starts switching at `start` and completes
    /// `slew` time units later.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not finite or `slew` is not strictly positive
    /// and finite.
    #[must_use]
    pub fn new(start: f64, slew: f64, edge: Edge) -> Self {
        assert!(start.is_finite(), "transition start must be finite");
        assert!(slew.is_finite() && slew > 0.0, "slew must be positive, got {slew}");
        Self { start, slew, edge }
    }

    /// Creates a transition from its 50 %-Vdd crossing time instead of its
    /// start time.
    #[must_use]
    pub fn from_t50(t50: f64, slew: f64, edge: Edge) -> Self {
        Self::new(t50 - slew / 2.0, slew, edge)
    }

    /// Time at which the ramp starts switching.
    #[must_use]
    pub fn start(&self) -> f64 {
        self.start
    }

    /// Full-swing transition time.
    #[must_use]
    pub fn slew(&self) -> f64 {
        self.slew
    }

    /// Direction of the transition.
    #[must_use]
    pub fn edge(&self) -> Edge {
        self.edge
    }

    /// Time at which the waveform crosses 50 % of Vdd.
    #[must_use]
    pub fn t50(&self) -> f64 {
        self.start + self.slew / 2.0
    }

    /// Time at which the ramp saturates.
    #[must_use]
    pub fn end(&self) -> f64 {
        self.start + self.slew
    }

    /// Voltage (normalized to Vdd = 1) at time `t`.
    #[must_use]
    pub fn eval(&self, t: f64) -> f64 {
        let x = ((t - self.start) / self.slew).clamp(0.0, 1.0);
        match self.edge {
            Edge::Rising => x,
            Edge::Falling => 1.0 - x,
        }
    }

    /// The transition translated by `dt`.
    #[must_use]
    pub fn shifted(&self, dt: f64) -> Transition {
        Transition::new(self.start + dt, self.slew, self.edge)
    }

    /// The waveform as a piecewise-linear curve.
    #[must_use]
    pub fn to_pwl(&self) -> Pwl {
        let (v0, v1) = match self.edge {
            Edge::Rising => (0.0, 1.0),
            Edge::Falling => (1.0, 0.0),
        };
        Pwl::new(vec![(self.start, v0), (self.end(), v1)])
            .expect("slew > 0 guarantees increasing times")
    }

    /// Whether two transitions are equal within [`EPS`].
    #[must_use]
    pub fn approx_eq(&self, other: &Transition) -> bool {
        self.edge == other.edge
            && (self.start - other.start).abs() <= EPS
            && (self.slew - other.slew).abs() <= EPS
    }
}

impl fmt::Display for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} t50={:.3} slew={:.3}", self.edge, self.t50(), self.slew)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rising_ramp_shape() {
        let t = Transition::new(0.0, 10.0, Edge::Rising);
        assert_eq!(t.eval(-1.0), 0.0);
        assert_eq!(t.eval(5.0), 0.5);
        assert_eq!(t.eval(10.0), 1.0);
        assert_eq!(t.eval(11.0), 1.0);
        assert_eq!(t.t50(), 5.0);
        assert_eq!(t.end(), 10.0);
    }

    #[test]
    fn falling_ramp_shape() {
        let t = Transition::new(0.0, 10.0, Edge::Falling);
        assert_eq!(t.eval(-1.0), 1.0);
        assert_eq!(t.eval(5.0), 0.5);
        assert_eq!(t.eval(10.0), 0.0);
    }

    #[test]
    fn from_t50_round_trips() {
        let t = Transition::from_t50(50.0, 8.0, Edge::Rising);
        assert_eq!(t.t50(), 50.0);
        assert_eq!(t.start(), 46.0);
    }

    #[test]
    #[should_panic(expected = "slew must be positive")]
    fn zero_slew_panics() {
        let _ = Transition::new(0.0, 0.0, Edge::Rising);
    }

    #[test]
    fn to_pwl_matches_eval() {
        let t = Transition::new(3.0, 7.0, Edge::Falling);
        let p = t.to_pwl();
        for i in 0..=20 {
            let x = i as f64;
            assert!((p.eval(x) - t.eval(x)).abs() < 1e-12, "mismatch at {x}");
        }
    }

    #[test]
    fn shift_moves_t50() {
        let t = Transition::new(0.0, 10.0, Edge::Rising).shifted(4.0);
        assert_eq!(t.t50(), 9.0);
    }

    #[test]
    fn edge_flip() {
        assert_eq!(Edge::Rising.flipped(), Edge::Falling);
        assert_eq!(Edge::Falling.flipped(), Edge::Rising);
    }
}
