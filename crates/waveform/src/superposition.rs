//! Superposition of noise envelopes onto victim transitions and the
//! resulting **delay noise** measurement.
//!
//! The linear noise framework (paper §2) computes worst-case delay noise by
//! superimposing the combined noise envelope with the latest victim
//! transition and observing the shift of the 50 %-Vdd crossing. For a
//! rising victim the worst-direction noise pulls the node *down*, so the
//! noisy waveform is `transition(t) - envelope(t)`; for a falling victim it
//! pushes the node *up* and the envelope is added. In both cases the delay
//! noise is the rightward shift of the final 50 % crossing, floored at
//! zero (noise can never help the worst case in this bounding framework).

use crate::{Edge, Envelope, Pwl, Transition};

/// The noisy victim waveform: the transition with the envelope superimposed
/// in the delay-increasing direction.
///
/// # Example
///
/// ```
/// use dna_waveform::{superposition, Transition, Edge, Envelope, NoisePulse};
///
/// let victim = Transition::new(0.0, 10.0, Edge::Rising);
/// let env = Envelope::from_pulse(&NoisePulse::symmetric(4.0, 0.3, 4.0));
/// let noisy = superposition::noisy_waveform(&victim, &env);
/// // The envelope peaks at t = 6 where the clean ramp reads 0.6.
/// assert!((noisy.eval(6.0) - 0.3).abs() < 1e-9);
/// ```
#[must_use]
pub fn noisy_waveform(victim: &Transition, envelope: &Envelope) -> Pwl {
    let clean = victim.to_pwl();
    match victim.edge() {
        Edge::Rising => &clean - envelope.as_pwl(),
        Edge::Falling => &clean + envelope.as_pwl(),
    }
}

/// The 50 %-Vdd crossing time of the noisy victim waveform.
///
/// This is the *latest* 50 % crossing: a large noise bump can push the
/// waveform back across 50 % after it first switched, and static analysis
/// must take the final crossing (paper Fig. 3).
///
/// Returns the noiseless `t50` when the envelope cannot produce a later
/// crossing.
#[must_use]
pub fn noisy_t50(victim: &Transition, envelope: &Envelope) -> f64 {
    if envelope.is_zero() {
        return victim.t50();
    }
    let noisy = noisy_waveform(victim, envelope);
    let crossing = match victim.edge() {
        Edge::Rising => noisy.last_time_at_or_below(0.5),
        Edge::Falling => noisy.last_time_at_or_above(0.5),
    };
    if crossing.is_finite() {
        crossing.max(victim.t50())
    } else {
        // Envelope never lets the waveform settle (cannot happen for
        // envelopes with decaying tails) or never disturbs it.
        victim.t50()
    }
}

/// Worst-case delay noise: the shift of the victim's 50 % crossing caused
/// by the envelope, floored at zero.
///
/// # Example
///
/// ```
/// use dna_waveform::{superposition, Transition, Edge, Envelope, NoisePulse};
///
/// let victim = Transition::new(0.0, 10.0, Edge::Rising);
/// // A pulse centred right on the victim's t50 delays the crossing…
/// let on_time = Envelope::from_pulse(&NoisePulse::symmetric(3.0, 0.3, 4.0));
/// assert!(superposition::delay_noise(&victim, &on_time) > 0.0);
/// // …while a pulse long before the transition does nothing.
/// let early = Envelope::from_pulse(&NoisePulse::symmetric(-100.0, 0.3, 4.0));
/// assert_eq!(superposition::delay_noise(&victim, &early), 0.0);
/// ```
#[must_use]
pub fn delay_noise(victim: &Transition, envelope: &Envelope) -> f64 {
    (noisy_t50(victim, envelope) - victim.t50()).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NoisePulse, TimeInterval, EPS};

    fn victim() -> Transition {
        Transition::new(0.0, 10.0, Edge::Rising)
    }

    #[test]
    fn zero_envelope_no_noise() {
        assert_eq!(delay_noise(&victim(), &Envelope::zero()), 0.0);
        assert_eq!(noisy_t50(&victim(), &Envelope::zero()), 5.0);
    }

    #[test]
    fn pulse_on_crossing_delays() {
        let env = Envelope::from_pulse(&NoisePulse::symmetric(3.0, 0.2, 4.0));
        // Peak 0.2 at t=5 where the clean ramp is exactly 0.5: the noisy
        // waveform reads 0.3 there and recrosses 0.5 later.
        let d = delay_noise(&victim(), &env);
        assert!(d > 0.0, "expected positive delay noise, got {d}");
        // Analytic check: noisy(t) = t/10 - pulse(t). On the pulse's falling
        // edge (t in [5,7]) pulse = 0.2*(7-t)/2, so noisy = 0.5 at
        // t/10 - 0.1*(7-t) = 0.5 -> 0.1t - 0.7 + 0.1t = 0.5 -> t = 6.
        assert!((d - 1.0).abs() < 1e-9, "delay noise {d} != 1.0");
    }

    #[test]
    fn early_and_late_pulses_are_harmless() {
        let early = Envelope::from_pulse(&NoisePulse::symmetric(-50.0, 0.4, 4.0));
        assert_eq!(delay_noise(&victim(), &early), 0.0);
        // A pulse after the ramp saturates cannot pull it below 0.5 when its
        // peak is under 0.5.
        let late = Envelope::from_pulse(&NoisePulse::symmetric(30.0, 0.4, 4.0));
        assert_eq!(delay_noise(&victim(), &late), 0.0);
    }

    #[test]
    fn late_tall_pulse_recrosses() {
        // A pulse with peak > 0.5 after saturation drags the settled node
        // below 50% and produces delay noise (glitch re-crossing).
        let late = Envelope::from_pulse(&NoisePulse::symmetric(30.0, 0.8, 4.0));
        let d = delay_noise(&victim(), &late);
        assert!(d > 20.0, "expected large delay noise, got {d}");
    }

    #[test]
    fn falling_victim_mirrors_rising() {
        let rise = Transition::new(0.0, 10.0, Edge::Rising);
        let fall = Transition::new(0.0, 10.0, Edge::Falling);
        let env = Envelope::from_pulse(&NoisePulse::symmetric(3.0, 0.2, 4.0));
        let dr = delay_noise(&rise, &env);
        let df = delay_noise(&fall, &env);
        assert!((dr - df).abs() < 1e-9, "rise {dr} vs fall {df}");
    }

    #[test]
    fn monotone_in_envelope_scale() {
        let base = Envelope::from_pulse(&NoisePulse::symmetric(2.0, 0.3, 6.0));
        let mut prev = 0.0;
        for i in 1..=6 {
            let env = base.scaled(i as f64 / 6.0);
            let d = delay_noise(&victim(), &env);
            assert!(d + EPS >= prev, "delay noise not monotone in scale");
            prev = d;
        }
    }

    #[test]
    fn theorem_1_waveform_level() {
        // If P encapsulates Q, then P + a produces >= delay noise than Q + a
        // for any extra envelope a (paper Theorem 1).
        let v = victim();
        let p = Envelope::from_window(&NoisePulse::symmetric(0.0, 0.25, 4.0), 0.0, 8.0);
        let q = Envelope::from_window(&NoisePulse::symmetric(0.0, 0.2, 4.0), 2.0, 6.0);
        let iv = TimeInterval::new(-10.0, 40.0);
        assert!(p.encapsulates(&q, iv));
        for shift in [-4.0, 0.0, 3.0, 6.0, 12.0] {
            let a = Envelope::from_pulse(&NoisePulse::symmetric(shift, 0.15, 5.0));
            let dp = delay_noise(&v, &p.sum(&a));
            let dq = delay_noise(&v, &q.sum(&a));
            assert!(dp + EPS >= dq, "Theorem 1 violated: {dp} < {dq} at shift {shift}");
        }
    }

    #[test]
    fn combined_envelope_noise_at_least_individual() {
        let v = victim();
        let a = Envelope::from_pulse(&NoisePulse::symmetric(2.0, 0.2, 5.0));
        let b = Envelope::from_pulse(&NoisePulse::symmetric(4.0, 0.15, 5.0));
        let dc = delay_noise(&v, &a.sum(&b));
        assert!(dc + EPS >= delay_noise(&v, &a));
        assert!(dc + EPS >= delay_noise(&v, &b));
    }

    #[test]
    fn noisy_waveform_superposes_linearly() {
        let v = victim();
        let env = Envelope::from_pulse(&NoisePulse::symmetric(2.0, 0.3, 5.0));
        let noisy = noisy_waveform(&v, &env);
        for i in 0..=60 {
            let t = i as f64 * 0.25;
            assert!((noisy.eval(t) - (v.eval(t) - env.eval(t))).abs() < 1e-9);
        }
    }
}
