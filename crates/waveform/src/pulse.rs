//! Triangular coupled-noise pulses.

use std::fmt;

use crate::{Pwl, TimeInterval};

/// A triangular noise pulse coupled onto a victim net by one switching
/// aggressor.
///
/// The pulse rises from zero at `start` to `peak` volts (normalized to
/// Vdd = 1) at `peak_time`, then decays back to zero at `end`. Pulse times
/// are *relative to the aggressor's switching instant*; aligning the
/// aggressor inside its timing window is a simple time shift.
///
/// The magnitude is always stored as a non-negative number — the analysis
/// layer decides whether the pulse opposes a rising or a falling victim
/// transition.
///
/// # Example
///
/// ```
/// use dna_waveform::NoisePulse;
///
/// let p = NoisePulse::new(0.0, 2.0, 0.25, 6.0);
/// assert_eq!(p.peak(), 0.25);
/// assert_eq!(p.eval(2.0), 0.25);
/// assert_eq!(p.eval(6.0), 0.0);
/// assert_eq!(p.width(), 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoisePulse {
    start: f64,
    peak_time: f64,
    peak: f64,
    end: f64,
}

impl NoisePulse {
    /// Creates a pulse from its three corner times and peak magnitude.
    ///
    /// # Panics
    ///
    /// Panics if the times are not ordered `start <= peak_time <= end`,
    /// if `start == end`, or if `peak` is negative or not finite.
    #[must_use]
    pub fn new(start: f64, peak_time: f64, peak: f64, end: f64) -> Self {
        assert!(
            start.is_finite() && peak_time.is_finite() && end.is_finite(),
            "pulse times must be finite"
        );
        assert!(
            start <= peak_time && peak_time <= end,
            "pulse corners must be ordered: start={start} peak_time={peak_time} end={end}"
        );
        assert!(end > start, "pulse must have positive width");
        assert!(peak.is_finite() && peak >= 0.0, "pulse peak must be non-negative, got {peak}");
        Self { start, peak_time, peak, end }
    }

    /// Creates a symmetric triangle of the given total `width` peaking at
    /// `start + width / 2`.
    #[must_use]
    pub fn symmetric(start: f64, peak: f64, width: f64) -> Self {
        assert!(width > 0.0, "pulse width must be positive, got {width}");
        Self::new(start, start + width / 2.0, peak, start + width)
    }

    /// Start of the pulse (first non-zero instant).
    #[must_use]
    pub fn start(&self) -> f64 {
        self.start
    }

    /// Time of the peak.
    #[must_use]
    pub fn peak_time(&self) -> f64 {
        self.peak_time
    }

    /// Peak magnitude (fraction of Vdd).
    #[must_use]
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// End of the pulse (back to zero).
    #[must_use]
    pub fn end(&self) -> f64 {
        self.end
    }

    /// Total width `end - start`.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.end - self.start
    }

    /// Support interval `[start, end]`.
    #[must_use]
    pub fn support(&self) -> TimeInterval {
        TimeInterval::new(self.start, self.end)
    }

    /// Pulse magnitude at time `t`.
    #[must_use]
    pub fn eval(&self, t: f64) -> f64 {
        if t <= self.start || t >= self.end {
            return 0.0;
        }
        if t <= self.peak_time {
            let rise = self.peak_time - self.start;
            if rise == 0.0 {
                self.peak
            } else {
                self.peak * (t - self.start) / rise
            }
        } else {
            let fall = self.end - self.peak_time;
            if fall == 0.0 {
                self.peak
            } else {
                self.peak * (self.end - t) / fall
            }
        }
    }

    /// The pulse translated by `dt`.
    #[must_use]
    pub fn shifted(&self, dt: f64) -> NoisePulse {
        NoisePulse::new(self.start + dt, self.peak_time + dt, self.peak, self.end + dt)
    }

    /// The pulse with its peak scaled by `factor` (must be non-negative).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> NoisePulse {
        assert!(factor >= 0.0, "pulse scale factor must be non-negative");
        NoisePulse::new(self.start, self.peak_time, self.peak * factor, self.end)
    }

    /// The pulse as a piecewise-linear curve (zero outside its support).
    #[must_use]
    pub fn to_pwl(&self) -> Pwl {
        let mut pts = vec![(self.start, 0.0)];
        if self.peak_time > self.start && self.peak_time < self.end {
            pts.push((self.peak_time, self.peak));
        } else if self.peak_time == self.start {
            // Degenerate leading edge: instant rise.
            pts.push((self.start, self.peak));
        }
        if self.peak_time == self.end {
            pts.push((self.end, self.peak));
        }
        pts.push((self.end, 0.0));
        // Near-coincident points are merged by Pwl::new; a degenerate corner
        // collapses into a step which is the correct limit shape.
        Pwl::new(pts).expect("ordered corners give ordered points")
    }
}

impl fmt::Display for NoisePulse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pulse peak={:.4}@{:.3} support=[{:.3}, {:.3}]",
            self.peak, self.peak_time, self.start, self.end
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_shape() {
        let p = NoisePulse::new(0.0, 4.0, 0.5, 10.0);
        assert_eq!(p.eval(-1.0), 0.0);
        assert_eq!(p.eval(0.0), 0.0);
        assert!((p.eval(2.0) - 0.25).abs() < 1e-12);
        assert_eq!(p.eval(4.0), 0.5);
        assert!((p.eval(7.0) - 0.25).abs() < 1e-12);
        assert_eq!(p.eval(10.0), 0.0);
        assert_eq!(p.eval(11.0), 0.0);
    }

    #[test]
    fn symmetric_constructor() {
        let p = NoisePulse::symmetric(10.0, 0.3, 8.0);
        assert_eq!(p.peak_time(), 14.0);
        assert_eq!(p.end(), 18.0);
        assert_eq!(p.width(), 8.0);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn unordered_corners_panic() {
        let _ = NoisePulse::new(5.0, 2.0, 0.1, 10.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_peak_panics() {
        let _ = NoisePulse::new(0.0, 1.0, -0.1, 2.0);
    }

    #[test]
    fn shift_and_scale() {
        let p = NoisePulse::symmetric(0.0, 0.4, 10.0).shifted(100.0);
        assert_eq!(p.start(), 100.0);
        assert_eq!(p.peak_time(), 105.0);
        let s = p.scaled(0.5);
        assert!((s.peak() - 0.2).abs() < 1e-12);
        assert_eq!(s.start(), p.start());
    }

    #[test]
    fn to_pwl_matches_eval() {
        let p = NoisePulse::new(1.0, 3.0, 0.6, 8.0);
        let w = p.to_pwl();
        for i in 0..=40 {
            let t = i as f64 * 0.25;
            assert!((w.eval(t) - p.eval(t)).abs() < 1e-9, "mismatch at {t}");
        }
    }

    #[test]
    fn support_interval() {
        let p = NoisePulse::new(1.0, 3.0, 0.6, 8.0);
        assert_eq!(p.support(), TimeInterval::new(1.0, 8.0));
    }
}
