//! Closed time intervals.

use std::fmt;

/// A closed interval `[lo, hi]` on the time axis.
///
/// Used for aggressor timing windows and for the *dominance interval* of
/// §3.2 of the paper (the time range over which one noise envelope must
/// encapsulate another in order to dominate it).
///
/// # Example
///
/// ```
/// use dna_waveform::TimeInterval;
///
/// let window = TimeInterval::new(10.0, 30.0);
/// assert!(window.contains(20.0));
/// assert!(window.overlaps(TimeInterval::new(25.0, 40.0)));
/// assert_eq!(window.width(), 20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeInterval {
    lo: f64,
    hi: f64,
}

impl TimeInterval {
    /// Creates a new interval.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "interval bounds must be finite");
        assert!(lo <= hi, "interval lower bound {lo} exceeds upper bound {hi}");
        Self { lo, hi }
    }

    /// A degenerate interval containing a single instant.
    #[must_use]
    pub fn point(t: f64) -> Self {
        Self::new(t, t)
    }

    /// Creates an interval **without validating the bounds**.
    ///
    /// The result may be inverted (`lo > hi`) or non-finite, which most
    /// interval consumers are not prepared for. Intended only for IR-level
    /// tooling — in particular the `dna-lint` verifier's known-bad test
    /// corpus, which exercises the window-ordering rules that
    /// [`new`](Self::new) makes unrepresentable.
    #[must_use]
    pub fn from_bounds_unchecked(lo: f64, hi: f64) -> Self {
        Self { lo, hi }
    }

    /// Lower bound.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width `hi - lo` of the interval.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether `t` lies inside the closed interval.
    #[must_use]
    pub fn contains(&self, t: f64) -> bool {
        self.lo <= t && t <= self.hi
    }

    /// Whether this interval and `other` share at least one instant.
    #[must_use]
    pub fn overlaps(&self, other: TimeInterval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Smallest interval containing both `self` and `other`.
    #[must_use]
    pub fn hull(&self, other: TimeInterval) -> TimeInterval {
        TimeInterval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Intersection of the two intervals, or `None` when disjoint.
    #[must_use]
    pub fn intersection(&self, other: TimeInterval) -> Option<TimeInterval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then(|| TimeInterval::new(lo, hi))
    }

    /// Interval translated by `dt`.
    #[must_use]
    pub fn shifted(&self, dt: f64) -> TimeInterval {
        TimeInterval::new(self.lo + dt, self.hi + dt)
    }

    /// Interval grown by `amount` on each side.
    ///
    /// Used when indirect aggressors widen a primary aggressor's timing
    /// window. A negative `amount` shrinks the interval but never past a
    /// single point at its centre.
    #[must_use]
    pub fn widened(&self, amount: f64) -> TimeInterval {
        let lo = self.lo - amount;
        let hi = self.hi + amount;
        if lo <= hi {
            TimeInterval::new(lo, hi)
        } else {
            TimeInterval::point(0.5 * (self.lo + self.hi))
        }
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.3}, {:.3}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let i = TimeInterval::new(1.0, 4.0);
        assert_eq!(i.lo(), 1.0);
        assert_eq!(i.hi(), 4.0);
        assert_eq!(i.width(), 3.0);
    }

    #[test]
    fn point_interval_is_empty_width() {
        let p = TimeInterval::point(2.5);
        assert_eq!(p.width(), 0.0);
        assert!(p.contains(2.5));
        assert!(!p.contains(2.6));
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn inverted_bounds_panic() {
        let _ = TimeInterval::new(2.0, 1.0);
    }

    #[test]
    fn overlap_is_symmetric_and_closed() {
        let a = TimeInterval::new(0.0, 10.0);
        let b = TimeInterval::new(10.0, 20.0);
        // Touching at an endpoint counts as overlap (closed intervals).
        assert!(a.overlaps(b));
        assert!(b.overlaps(a));
        let c = TimeInterval::new(10.1, 20.0);
        assert!(!a.overlaps(c));
    }

    #[test]
    fn hull_and_intersection() {
        let a = TimeInterval::new(0.0, 5.0);
        let b = TimeInterval::new(3.0, 8.0);
        assert_eq!(a.hull(b), TimeInterval::new(0.0, 8.0));
        assert_eq!(a.intersection(b), Some(TimeInterval::new(3.0, 5.0)));
        let c = TimeInterval::new(6.0, 7.0);
        assert_eq!(a.intersection(c), None);
    }

    #[test]
    fn widen_and_shrink() {
        let a = TimeInterval::new(2.0, 4.0);
        assert_eq!(a.widened(1.0), TimeInterval::new(1.0, 5.0));
        // Shrinking past collapse pins at the centre.
        assert_eq!(a.widened(-5.0), TimeInterval::point(3.0));
    }

    #[test]
    fn shift_preserves_width() {
        let a = TimeInterval::new(2.0, 4.0);
        let s = a.shifted(10.0);
        assert_eq!(s, TimeInterval::new(12.0, 14.0));
        assert_eq!(s.width(), a.width());
    }
}
