//! Property-based tests for the waveform algebra.
//!
//! These pin down the invariants the top-k algorithm's correctness rests
//! on, most importantly the waveform-level form of the paper's Theorem 1.

use dna_waveform::{superposition, Edge, Envelope, NoisePulse, Pwl, TimeInterval, Transition, EPS};
use proptest::prelude::*;

/// Strategy for a small, well-formed noise pulse.
fn pulse_strategy() -> impl Strategy<Value = NoisePulse> {
    (-50.0..50.0f64, 0.01..0.9f64, 0.5..30.0f64, 0.0..1.0f64).prop_map(
        |(start, peak, width, skew)| {
            let peak_time = start + skew * width;
            NoisePulse::new(start, peak_time, peak, start + width)
        },
    )
}

/// Strategy for a timing window anchored near the victim transition.
fn window_strategy() -> impl Strategy<Value = (f64, f64)> {
    (-40.0..40.0f64, 0.0..40.0f64).prop_map(|(eat, w)| (eat, eat + w))
}

fn victim_strategy() -> impl Strategy<Value = Transition> {
    (-10.0..10.0f64, 1.0..25.0f64, prop::bool::ANY).prop_map(|(start, slew, rising)| {
        Transition::new(start, slew, if rising { Edge::Rising } else { Edge::Falling })
    })
}

proptest! {
    /// Pwl evaluation is exact at breakpoints.
    #[test]
    fn pwl_eval_hits_breakpoints(ts in prop::collection::vec(-100.0..100.0f64, 1..10),
                                 vs in prop::collection::vec(-2.0..2.0f64, 10)) {
        let mut times = ts.clone();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        times.dedup_by(|a, b| (*a - *b).abs() <= 1e-6);
        let pts: Vec<(f64, f64)> = times.iter().zip(vs.iter()).map(|(&t, &v)| (t, v)).collect();
        prop_assume!(!pts.is_empty());
        let pwl = Pwl::new(pts.clone()).unwrap();
        for (t, v) in pts {
            prop_assert!((pwl.eval(t) - v).abs() < 1e-9);
        }
    }

    /// Sum of envelopes equals pointwise addition at arbitrary samples.
    #[test]
    fn envelope_sum_is_pointwise(p1 in pulse_strategy(), p2 in pulse_strategy(),
                                 (e1, l1) in window_strategy(), (e2, l2) in window_strategy(),
                                 sample in -100.0..150.0f64) {
        let a = Envelope::from_window(&p1, e1, l1);
        let b = Envelope::from_window(&p2, e2, l2);
        let s = a.sum(&b);
        prop_assert!((s.eval(sample) - (a.eval(sample) + b.eval(sample))).abs() < 1e-9);
    }

    /// Envelope sum is commutative.
    #[test]
    fn envelope_sum_commutes(p1 in pulse_strategy(), p2 in pulse_strategy(),
                             (e1, l1) in window_strategy(), (e2, l2) in window_strategy(),
                             sample in -100.0..150.0f64) {
        let a = Envelope::from_window(&p1, e1, l1);
        let b = Envelope::from_window(&p2, e2, l2);
        prop_assert!((a.sum(&b).eval(sample) - b.sum(&a).eval(sample)).abs() < 1e-9);
    }

    /// A window envelope encapsulates the same pulse's envelope over any
    /// sub-window (monotonicity of the trapezoid in the window).
    #[test]
    fn wider_window_encapsulates(p in pulse_strategy(), (eat, lat) in window_strategy(),
                                 shrink_lo in 0.0..1.0f64, shrink_hi in 0.0..1.0f64) {
        let mid = 0.5 * (eat + lat);
        let sub_eat = eat + shrink_lo * (mid - eat);
        let sub_lat = lat - shrink_hi * (lat - mid);
        let wide = Envelope::from_window(&p, eat, lat);
        let narrow = Envelope::from_window(&p, sub_eat, sub_lat);
        let iv = TimeInterval::new(eat + p.start() - 5.0, lat + p.end() + 5.0);
        prop_assert!(wide.encapsulates(&narrow, iv));
    }

    /// Delay noise is always non-negative and finite.
    #[test]
    fn delay_noise_nonnegative(v in victim_strategy(), p in pulse_strategy(),
                               (eat, lat) in window_strategy()) {
        let env = Envelope::from_window(&p, eat, lat);
        let d = superposition::delay_noise(&v, &env);
        prop_assert!(d.is_finite());
        prop_assert!(d >= 0.0);
    }

    /// Theorem 1 (waveform level): if P encapsulates Q over a wide interval
    /// then adding any envelope A preserves the delay-noise ordering.
    #[test]
    fn theorem_1_holds(v in victim_strategy(),
                       p in pulse_strategy(), (pe, pl) in window_strategy(),
                       q_scale in 0.0..1.0f64, q_shrink in 0.0..1.0f64,
                       a in pulse_strategy(), (ae, al) in window_strategy()) {
        // Construct Q as a scaled-down, narrower version of P so that
        // encapsulation holds by construction.
        let p_env = Envelope::from_window(&p, pe, pl);
        let mid = 0.5 * (pe + pl);
        let q_env = Envelope::from_window(
            &p.scaled(q_scale),
            pe + q_shrink * (mid - pe),
            pl - q_shrink * (pl - mid),
        );
        let iv = TimeInterval::new(-200.0, 300.0);
        prop_assert!(p_env.encapsulates(&q_env, iv));

        let a_env = Envelope::from_window(&a, ae, al);
        let dp = superposition::delay_noise(&v, &p_env.sum(&a_env));
        let dq = superposition::delay_noise(&v, &q_env.sum(&a_env));
        prop_assert!(dp + 1e-6 >= dq, "Theorem 1 violated: {} < {}", dp, dq);
    }

    /// Encapsulation is transitive (the dominance relation is a partial
    /// order, §3.2).
    #[test]
    fn encapsulation_transitive(p in pulse_strategy(), (eat, lat) in window_strategy(),
                                s1 in 0.0..1.0f64, s2 in 0.0..1.0f64) {
        let a = Envelope::from_window(&p, eat, lat);
        let b = a.scaled(s1);
        let c = b.scaled(s2);
        let iv = TimeInterval::new(-200.0, 300.0);
        prop_assert!(a.encapsulates(&b, iv));
        prop_assert!(b.encapsulates(&c, iv));
        prop_assert!(a.encapsulates(&c, iv));
    }

    /// noisy_t50 never precedes the noiseless t50.
    #[test]
    fn noisy_t50_never_early(v in victim_strategy(), p in pulse_strategy(),
                             (eat, lat) in window_strategy()) {
        let env = Envelope::from_window(&p, eat, lat);
        prop_assert!(superposition::noisy_t50(&v, &env) + EPS >= v.t50());
    }

    /// saturating_sub is the pointwise max(a - b, 0).
    #[test]
    fn saturating_sub_pointwise(p1 in pulse_strategy(), p2 in pulse_strategy(),
                                (e1, l1) in window_strategy(), (e2, l2) in window_strategy(),
                                sample in -100.0..150.0f64) {
        let a = Envelope::from_window(&p1, e1, l1);
        let b = Envelope::from_window(&p2, e2, l2);
        let d = a.saturating_sub(&b);
        let expect = (a.eval(sample) - b.eval(sample)).max(0.0);
        prop_assert!((d.eval(sample) - expect).abs() < 1e-9);
    }

    /// Pointwise max upper-bounds both operands everywhere.
    #[test]
    fn pointwise_max_bounds(p1 in pulse_strategy(), p2 in pulse_strategy(),
                            sample in -100.0..150.0f64) {
        let a = p1.to_pwl();
        let b = p2.to_pwl();
        let m = a.pointwise_max(&b);
        prop_assert!(m.eval(sample) + 1e-9 >= a.eval(sample));
        prop_assert!(m.eval(sample) + 1e-9 >= b.eval(sample));
        prop_assert!(m.eval(sample) <= a.eval(sample).max(b.eval(sample)) + 1e-9);
    }
}
