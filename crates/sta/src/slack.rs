//! Required-time and slack computation (backward pass).

use dna_netlist::{Circuit, NetId};

use crate::{DelayModel, TimingReport};

/// Per-net required times and slacks for a given clock period.
///
/// The backward pass mirrors the forward arrival pass: a net's required
/// time is the minimum over its load gates of (load output's required time
/// minus the load's delay); primary outputs are required at the clock
/// period. `slack = required - LAT`.
///
/// # Example
///
/// ```
/// use dna_netlist::{CircuitBuilder, Library, CellKind};
/// use dna_sta::{SlackReport, TimingReport, StaConfig, LinearDelayModel};
///
/// let mut b = CircuitBuilder::new(Library::cmos013());
/// let a = b.input("a");
/// let y = b.gate(CellKind::Inv, "u1", &[a])?;
/// b.output(y);
/// let circuit = b.build()?;
/// let model = LinearDelayModel::new();
/// let timing = TimingReport::run(&circuit, &model, &StaConfig::default())?;
///
/// // Clock at exactly the circuit delay: the critical path has zero slack.
/// let slack = SlackReport::compute(&circuit, &model, &timing, timing.circuit_delay());
/// assert!(slack.slack(y).abs() < 1e-9);
/// assert!(slack.worst_slack() >= -1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SlackReport {
    required: Vec<f64>,
    slack: Vec<f64>,
}

impl SlackReport {
    /// Runs the backward pass against `clock_period`.
    #[must_use]
    pub fn compute<M: DelayModel>(
        circuit: &Circuit,
        model: &M,
        timing: &TimingReport,
        clock_period: f64,
    ) -> Self {
        let n = circuit.num_nets();
        let mut required = vec![f64::INFINITY; n];
        for &out in circuit.primary_outputs() {
            required[out.index()] = clock_period;
        }
        // Walk nets in reverse topological order; each gate imposes a
        // required time on its inputs.
        for &net in circuit.nets_topological().iter().rev() {
            let r_out = required[net.index()];
            if !r_out.is_finite() {
                continue;
            }
            if let Some(gate_id) = circuit.net(net).source().gate() {
                let gate = circuit.gate(gate_id);
                let cell = circuit.library().cell(gate.kind());
                let delay = model.gate_delay(cell, circuit.load_cap(net));
                for &input in gate.inputs() {
                    let r_in = r_out - delay;
                    if r_in < required[input.index()] {
                        required[input.index()] = r_in;
                    }
                }
            }
        }
        // Nets that reach no primary output keep infinite required time and
        // hence infinite slack; report them as unconstrained via f64::MAX.
        let slack = (0..n)
            .map(|i| {
                if required[i].is_finite() {
                    required[i] - timing.timings()[i].lat()
                } else {
                    f64::MAX
                }
            })
            .collect();
        Self { required, slack }
    }

    /// Required time of `net` (may be `INFINITY` for unconstrained nets).
    #[must_use]
    pub fn required(&self, net: NetId) -> f64 {
        self.required[net.index()]
    }

    /// Slack of `net` (`f64::MAX` for unconstrained nets).
    #[must_use]
    pub fn slack(&self, net: NetId) -> f64 {
        self.slack[net.index()]
    }

    /// The smallest slack in the design.
    #[must_use]
    pub fn worst_slack(&self) -> f64 {
        self.slack.iter().copied().fold(f64::MAX, f64::min)
    }

    /// Nets with slack below `threshold`, sorted most-critical first.
    #[must_use]
    pub fn critical_nets(&self, threshold: f64) -> Vec<NetId> {
        let mut nets: Vec<NetId> = (0..self.slack.len() as u32)
            .map(NetId::new)
            .filter(|&n| self.slack[n.index()] < threshold)
            .collect();
        nets.sort_by(|&a, &b| {
            self.slack[a.index()].partial_cmp(&self.slack[b.index()]).expect("finite slacks")
        });
        nets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearDelayModel, StaConfig};
    use dna_netlist::{CellKind, CircuitBuilder, Library};

    #[test]
    fn zero_slack_on_critical_path_at_exact_clock() {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let fast = b.gate(CellKind::Inv, "fast", &[a]).unwrap();
        let s1 = b.gate(CellKind::Buf, "s1", &[a]).unwrap();
        let s2 = b.gate(CellKind::Buf, "s2", &[s1]).unwrap();
        let out = b.gate(CellKind::Nand2, "out", &[fast, s2]).unwrap();
        b.output(out);
        let c = b.build().unwrap();
        let model = LinearDelayModel::new();
        let timing = TimingReport::run(&c, &model, &StaConfig::default()).unwrap();
        let slack = SlackReport::compute(&c, &model, &timing, timing.circuit_delay());

        for net in [a, s1, s2, out] {
            assert!(slack.slack(net).abs() < 1e-9, "critical net {net} has nonzero slack");
        }
        // The fast branch has positive slack.
        assert!(slack.slack(fast) > 0.0);
        assert!(slack.worst_slack().abs() < 1e-9);
        // Critical nets (slack < tiny) are exactly the critical path.
        let crit = slack.critical_nets(1e-6);
        assert_eq!(crit.len(), 4);
    }

    #[test]
    fn looser_clock_adds_uniform_slack() {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let y = b.gate(CellKind::Inv, "y", &[a]).unwrap();
        b.output(y);
        let c = b.build().unwrap();
        let model = LinearDelayModel::new();
        let timing = TimingReport::run(&c, &model, &StaConfig::default()).unwrap();
        let tight = SlackReport::compute(&c, &model, &timing, timing.circuit_delay());
        let loose = SlackReport::compute(&c, &model, &timing, timing.circuit_delay() + 100.0);
        assert!((loose.slack(y) - tight.slack(y) - 100.0).abs() < 1e-9);
        assert!((loose.worst_slack() - tight.worst_slack() - 100.0).abs() < 1e-9);
    }
}
