//! Top-k critical paths.
//!
//! The paper motivates top-k aggressor sets by analogy with the top-k
//! critical paths "commonly reported in traditional static timing
//! analysis" (§1). This module provides that traditional report: the `k`
//! input-to-output paths with the largest arrival times, computed with a
//! per-net k-best dynamic program over the DAG.

use dna_netlist::{Circuit, NetId, NetSource};

use crate::{DelayModel, StaConfig, TimingPath};

/// One arrival candidate at a net: the arrival time and where it came from.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    arrival: f64,
    /// Predecessor net and the index of the candidate within it.
    pred: Option<(NetId, usize)>,
}

/// Computes the `k` latest input-to-output timing paths.
///
/// Paths are returned sorted by decreasing arrival. Fewer than `k` paths
/// are returned when the circuit has fewer distinct paths.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Example
///
/// ```
/// use dna_netlist::{CircuitBuilder, Library, CellKind};
/// use dna_sta::{top_k_paths, StaConfig, LinearDelayModel};
///
/// let mut b = CircuitBuilder::new(Library::cmos013());
/// let a = b.input("a");
/// let fast = b.gate(CellKind::Inv, "fast", &[a])?;
/// let slow1 = b.gate(CellKind::Buf, "slow1", &[a])?;
/// let slow2 = b.gate(CellKind::Buf, "slow2", &[slow1])?;
/// let out = b.gate(CellKind::Nand2, "out", &[fast, slow2])?;
/// b.output(out);
/// let circuit = b.build()?;
///
/// let paths = top_k_paths(&circuit, &LinearDelayModel::new(), &StaConfig::default(), 2);
/// assert_eq!(paths.len(), 2);
/// assert!(paths[0].arrival() >= paths[1].arrival());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn top_k_paths<M: DelayModel>(
    circuit: &Circuit,
    model: &M,
    config: &StaConfig,
    k: usize,
) -> Vec<TimingPath> {
    assert!(k > 0, "k must be positive");
    let n = circuit.num_nets();
    let mut cands: Vec<Vec<Candidate>> = vec![Vec::new(); n];

    for &net in circuit.nets_topological() {
        match circuit.net(net).source() {
            NetSource::PrimaryInput => {
                cands[net.index()] = vec![Candidate { arrival: config.input_arrival, pred: None }];
            }
            NetSource::Gate(g) => {
                let gate = circuit.gate(g);
                let cell = circuit.library().cell(gate.kind());
                let delay = model.gate_delay(cell, circuit.load_cap(net));
                let mut merged: Vec<Candidate> = Vec::new();
                for &input in gate.inputs() {
                    for (ci, c) in cands[input.index()].iter().enumerate() {
                        merged.push(Candidate {
                            arrival: c.arrival + delay,
                            pred: Some((input, ci)),
                        });
                    }
                }
                merged.sort_by(|a, b| b.arrival.partial_cmp(&a.arrival).expect("finite arrivals"));
                merged.truncate(k);
                cands[net.index()] = merged;
            }
        }
    }

    // Collect candidates at every primary output and keep the global top k.
    let mut endpoints: Vec<(NetId, usize, f64)> = Vec::new();
    for &out in circuit.primary_outputs() {
        for (ci, c) in cands[out.index()].iter().enumerate() {
            endpoints.push((out, ci, c.arrival));
        }
    }
    endpoints.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite arrivals"));
    endpoints.truncate(k);

    endpoints
        .into_iter()
        .map(|(net, ci, arrival)| {
            let mut nets = vec![net];
            let mut cursor = cands[net.index()][ci];
            while let Some((pred, pi)) = cursor.pred {
                nets.push(pred);
                cursor = cands[pred.index()][pi];
            }
            nets.reverse();
            TimingPath::new(nets, arrival)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{critical_path, LinearDelayModel, StaConfig, TimingReport};
    use dna_netlist::{generator, CellKind, CircuitBuilder, Library};

    fn diamond() -> Circuit {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let fast = b.gate(CellKind::Inv, "fast", &[a]).unwrap();
        let s1 = b.gate(CellKind::Buf, "s1", &[a]).unwrap();
        let s2 = b.gate(CellKind::Buf, "s2", &[s1]).unwrap();
        let out = b.gate(CellKind::Nand2, "out", &[fast, s2]).unwrap();
        b.output(out);
        b.build().unwrap()
    }

    #[test]
    fn top_1_matches_critical_path() {
        let c = diamond();
        let model = LinearDelayModel::new();
        let cfg = StaConfig::default();
        let r = TimingReport::run(&c, &model, &cfg).unwrap();
        let paths = top_k_paths(&c, &model, &cfg, 1);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].nets(), critical_path(&c, &r).nets());
        assert!((paths[0].arrival() - r.circuit_delay()).abs() < 1e-9);
    }

    #[test]
    fn paths_sorted_and_distinct() {
        let c = diamond();
        let paths = top_k_paths(&c, &LinearDelayModel::new(), &StaConfig::default(), 5);
        // Diamond has exactly 2 input-to-output paths.
        assert_eq!(paths.len(), 2);
        assert!(paths[0].arrival() >= paths[1].arrival());
        assert_ne!(paths[0].nets(), paths[1].nets());
    }

    #[test]
    fn top_1_matches_sta_on_random_circuits() {
        let model = LinearDelayModel::new();
        let cfg = StaConfig::default();
        for seed in 0..5 {
            let c = generator::generate(&generator::GeneratorConfig::new(60, 0).with_seed(seed))
                .unwrap();
            let r = TimingReport::run(&c, &model, &cfg).unwrap();
            let paths = top_k_paths(&c, &model, &cfg, 1);
            assert!(
                (paths[0].arrival() - r.circuit_delay()).abs() < 1e-9,
                "seed {seed}: {} vs {}",
                paths[0].arrival(),
                r.circuit_delay()
            );
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let c = diamond();
        let _ = top_k_paths(&c, &LinearDelayModel::new(), &StaConfig::default(), 0);
    }
}
