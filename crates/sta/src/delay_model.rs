//! Gate delay models.

use dna_netlist::Cell;

/// Maps a characterized cell and its load to a delay and an output slew.
///
/// The workspace follows the paper's engineering decision (§2) to stay in a
/// *linear* framework: the default [`LinearDelayModel`] computes
/// `delay = d0 + R·C` directly from the [`Cell`] parameters. The trait
/// exists so experiments can swap in derated or pessimistic models without
/// touching the analysis code.
pub trait DelayModel {
    /// Propagation delay (ps) of `cell` driving `c_load` fF.
    fn gate_delay(&self, cell: &Cell, c_load: f64) -> f64;

    /// Output slew (ps) of `cell` driving `c_load` fF.
    fn output_slew(&self, cell: &Cell, c_load: f64) -> f64;
}

/// The default linear delay model: delegates to the cell's own linear
/// characterization.
///
/// # Example
///
/// ```
/// use dna_netlist::{Library, CellKind};
/// use dna_sta::{DelayModel, LinearDelayModel};
///
/// let lib = Library::cmos013();
/// let model = LinearDelayModel::new();
/// let inv = lib.cell(CellKind::Inv);
/// assert_eq!(model.gate_delay(inv, 10.0), inv.delay(10.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinearDelayModel;

impl LinearDelayModel {
    /// Creates the model.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl DelayModel for LinearDelayModel {
    fn gate_delay(&self, cell: &Cell, c_load: f64) -> f64 {
        cell.delay(c_load)
    }

    fn output_slew(&self, cell: &Cell, c_load: f64) -> f64 {
        cell.output_slew(c_load)
    }
}

/// A linear model with global derating factors, useful for pessimism
/// studies and ablation benches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeratedDelayModel {
    /// Multiplier applied to every gate delay.
    pub delay_factor: f64,
    /// Multiplier applied to every output slew.
    pub slew_factor: f64,
}

impl DeratedDelayModel {
    /// Creates a derated model; factors of `1.0` reproduce
    /// [`LinearDelayModel`].
    ///
    /// # Panics
    ///
    /// Panics if either factor is not strictly positive.
    #[must_use]
    pub fn new(delay_factor: f64, slew_factor: f64) -> Self {
        assert!(delay_factor > 0.0 && slew_factor > 0.0, "derating factors must be positive");
        Self { delay_factor, slew_factor }
    }
}

impl DelayModel for DeratedDelayModel {
    fn gate_delay(&self, cell: &Cell, c_load: f64) -> f64 {
        self.delay_factor * cell.delay(c_load)
    }

    fn output_slew(&self, cell: &Cell, c_load: f64) -> f64 {
        self.slew_factor * cell.output_slew(c_load)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_netlist::{CellKind, Library};

    #[test]
    fn linear_matches_cell() {
        let lib = Library::cmos013();
        let m = LinearDelayModel::new();
        for cell in lib.cells() {
            assert_eq!(m.gate_delay(cell, 5.0), cell.delay(5.0));
            assert_eq!(m.output_slew(cell, 5.0), cell.output_slew(5.0));
        }
    }

    #[test]
    fn derated_scales() {
        let lib = Library::cmos013();
        let inv = lib.cell(CellKind::Inv);
        let m = DeratedDelayModel::new(1.5, 2.0);
        assert!((m.gate_delay(inv, 4.0) - 1.5 * inv.delay(4.0)).abs() < 1e-12);
        assert!((m.output_slew(inv, 4.0) - 2.0 * inv.output_slew(4.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn derated_rejects_zero() {
        let _ = DeratedDelayModel::new(0.0, 1.0);
    }
}
