//! Critical-path extraction.

use std::fmt;

use dna_netlist::{Circuit, NetId, NetSource};

use crate::TimingReport;

/// A timing path: a chain of nets from a primary input to a primary
/// output, with the arrival time at its endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingPath {
    nets: Vec<NetId>,
    arrival: f64,
}

impl TimingPath {
    pub(crate) fn new(nets: Vec<NetId>, arrival: f64) -> Self {
        assert!(!nets.is_empty(), "a timing path has at least one net");
        Self { nets, arrival }
    }

    /// Nets along the path, input first.
    #[must_use]
    pub fn nets(&self) -> &[NetId] {
        &self.nets
    }

    /// Arrival time at the path endpoint.
    #[must_use]
    pub fn arrival(&self) -> f64 {
        self.arrival
    }

    /// The endpoint (last net) of the path.
    ///
    /// # Panics
    ///
    /// Never panics; paths are non-empty by construction.
    #[must_use]
    pub fn endpoint(&self) -> NetId {
        *self.nets.last().expect("paths are non-empty")
    }

    /// Number of nets on the path.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nets.len()
    }

    /// Whether the path is empty (never true).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nets.is_empty()
    }
}

impl fmt::Display for TimingPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path({} nets, arrival {:.3})", self.nets.len(), self.arrival)
    }
}

/// Extracts the critical path ending at the report's critical output by
/// walking critical-predecessor pointers back to a primary input.
///
/// # Example
///
/// ```
/// use dna_netlist::{CircuitBuilder, Library, CellKind};
/// use dna_sta::{critical_path, TimingReport, StaConfig, LinearDelayModel};
///
/// let mut b = CircuitBuilder::new(Library::cmos013());
/// let a = b.input("a");
/// let y = b.gate(CellKind::Inv, "u1", &[a])?;
/// let z = b.gate(CellKind::Buf, "u2", &[y])?;
/// b.output(z);
/// let circuit = b.build()?;
/// let report = TimingReport::run(&circuit, &LinearDelayModel::new(), &StaConfig::default())?;
///
/// let path = critical_path(&circuit, &report);
/// assert_eq!(path.nets().len(), 3); // a -> u1 -> u2
/// assert_eq!(path.arrival(), report.circuit_delay());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn critical_path(circuit: &Circuit, report: &TimingReport) -> TimingPath {
    path_to(circuit, report, report.critical_output())
}

/// Extracts the latest-arrival path ending at an arbitrary net.
#[must_use]
pub fn path_to(circuit: &Circuit, report: &TimingReport, endpoint: NetId) -> TimingPath {
    let mut nets = vec![endpoint];
    let mut cursor = endpoint;
    loop {
        match circuit.net(cursor).source() {
            NetSource::PrimaryInput => break,
            NetSource::Gate(_) => {
                let pred = report
                    .critical_pred(cursor)
                    .expect("gate-driven nets always have a critical predecessor");
                nets.push(pred);
                cursor = pred;
            }
        }
    }
    nets.reverse();
    TimingPath::new(nets, report.timing(endpoint).lat())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearDelayModel, StaConfig};
    use dna_netlist::{CellKind, CircuitBuilder, Library};

    #[test]
    fn critical_path_takes_slow_branch() {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let fast = b.gate(CellKind::Inv, "fast", &[a]).unwrap();
        let s1 = b.gate(CellKind::Buf, "s1", &[a]).unwrap();
        let s2 = b.gate(CellKind::Buf, "s2", &[s1]).unwrap();
        let out = b.gate(CellKind::Nand2, "out", &[fast, s2]).unwrap();
        b.output(out);
        let c = b.build().unwrap();
        let r = TimingReport::run(&c, &LinearDelayModel::new(), &StaConfig::default()).unwrap();
        let p = critical_path(&c, &r);
        assert_eq!(p.nets(), &[a, s1, s2, out]);
        assert_eq!(p.endpoint(), out);
        assert_eq!(p.arrival(), r.circuit_delay());
        assert!(!p.is_empty());
    }

    #[test]
    fn path_to_intermediate_net() {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let y = b.gate(CellKind::Inv, "y", &[a]).unwrap();
        let z = b.gate(CellKind::Inv, "z", &[y]).unwrap();
        b.output(z);
        let c = b.build().unwrap();
        let r = TimingReport::run(&c, &LinearDelayModel::new(), &StaConfig::default()).unwrap();
        let p = path_to(&c, &r, y);
        assert_eq!(p.nets(), &[a, y]);
        assert_eq!(p.arrival(), r.timing(y).lat());
    }
}
