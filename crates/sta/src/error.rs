//! STA errors.

use std::error::Error;
use std::fmt;

use dna_netlist::NetId;

/// Error produced by the timing analyses in this crate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StaError {
    /// The circuit exposes no primary output to time against.
    NoOutputs,
    /// A noise source reported a negative delay noise for a net.
    NegativeNoise {
        /// The offending net.
        net: NetId,
        /// The reported (negative) value.
        value: f64,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::NoOutputs => write!(f, "circuit has no primary outputs to time"),
            StaError::NegativeNoise { net, value } => {
                write!(f, "negative delay noise {value} reported at net {net}")
            }
        }
    }
}

impl Error for StaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_net() {
        let e = StaError::NegativeNoise { net: NetId::new(4), value: -2.0 };
        assert!(e.to_string().contains("n4"));
        assert!(StaError::NoOutputs.to_string().contains("output"));
    }
}
