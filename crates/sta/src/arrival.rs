//! Forward arrival-time propagation.

use dna_netlist::{Circuit, NetId, NetSource};

use crate::{DelayModel, NetTiming, StaError};

/// Boundary conditions for an arrival propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaConfig {
    /// Arrival time (ps) of every primary input's 50 % crossing.
    pub input_arrival: f64,
    /// Slew (ps) of every primary input transition.
    pub input_slew: f64,
}

impl Default for StaConfig {
    fn default() -> Self {
        Self { input_arrival: 0.0, input_slew: 20.0 }
    }
}

/// Result of one arrival propagation over a circuit.
///
/// Holds the [`NetTiming`] of every net, the circuit delay (latest arrival
/// at any primary output) and the predecessor pointers needed to extract
/// critical paths.
///
/// # Example
///
/// ```
/// use dna_netlist::{CircuitBuilder, Library, CellKind};
/// use dna_sta::{TimingReport, StaConfig, LinearDelayModel};
///
/// let mut b = CircuitBuilder::new(Library::cmos013());
/// let a = b.input("a");
/// let y = b.gate(CellKind::Inv, "u1", &[a])?;
/// b.output(y);
/// let circuit = b.build()?;
///
/// let report = TimingReport::run(&circuit, &LinearDelayModel::new(), &StaConfig::default())?;
/// assert!(report.circuit_delay() > 0.0);
/// assert_eq!(report.timing(y).eat(), report.timing(y).lat());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    timings: Vec<NetTiming>,
    /// For each net driven by a gate: the input net whose LAT set this
    /// net's LAT (critical predecessor).
    critical_pred: Vec<Option<NetId>>,
    circuit_delay: f64,
    critical_output: NetId,
}

impl TimingReport {
    /// Runs a noiseless arrival propagation.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::NoOutputs`] if the circuit has no primary
    /// outputs (cannot happen for validated circuits).
    pub fn run<M: DelayModel>(
        circuit: &Circuit,
        model: &M,
        config: &StaConfig,
    ) -> Result<Self, StaError> {
        Self::run_with_noise(circuit, model, config, &NoNoise)
    }

    /// Runs an arrival propagation where each net's LAT is pushed later by
    /// a per-net delay-noise amount.
    ///
    /// The extra delay at net `n` is added after `n`'s own arrival is
    /// computed, so it automatically propagates to every downstream net —
    /// this is the mechanism the iterative noise analysis (and the paper's
    /// pseudo-aggressor propagation) relies on.
    ///
    /// # Errors
    ///
    /// Returns [`StaError::NoOutputs`] if the circuit has no primary
    /// outputs and [`StaError::NegativeNoise`] if the source reports a
    /// negative delay noise.
    pub fn run_with_noise<M: DelayModel, N: NoiseSource>(
        circuit: &Circuit,
        model: &M,
        config: &StaConfig,
        noise: &N,
    ) -> Result<Self, StaError> {
        let n_nets = circuit.num_nets();
        let mut timings: Vec<Option<NetTiming>> = vec![None; n_nets];
        let mut critical_pred: Vec<Option<NetId>> = vec![None; n_nets];

        for &net in circuit.nets_topological() {
            let timing = match circuit.net(net).source() {
                NetSource::PrimaryInput => {
                    NetTiming::new(config.input_arrival, config.input_arrival, config.input_slew)
                }
                NetSource::Gate(g) => {
                    let gate = circuit.gate(g);
                    let cell = circuit.library().cell(gate.kind());
                    let load = circuit.load_cap(net);
                    let delay = model.gate_delay(cell, load);
                    let slew = model.output_slew(cell, load);

                    let mut eat = f64::INFINITY;
                    let mut lat = f64::NEG_INFINITY;
                    let mut pred = None;
                    for &input in gate.inputs() {
                        let it = timings[input.index()]
                            .expect("topological order guarantees inputs are timed");
                        eat = eat.min(it.eat());
                        if it.lat() > lat {
                            lat = it.lat();
                            pred = Some(input);
                        }
                    }
                    critical_pred[net.index()] = pred;
                    NetTiming::new(eat + delay, lat + delay, slew)
                }
            };
            let extra = noise.delay_noise(net);
            if extra < 0.0 {
                return Err(StaError::NegativeNoise { net, value: extra });
            }
            timings[net.index()] = Some(timing.with_extra_lat(extra));
        }

        let timings: Vec<NetTiming> =
            timings.into_iter().map(|t| t.expect("all nets timed")).collect();

        let critical_output = circuit
            .primary_outputs()
            .iter()
            .copied()
            .max_by(|&a, &b| {
                timings[a.index()]
                    .lat()
                    .partial_cmp(&timings[b.index()].lat())
                    .expect("finite arrival times")
            })
            .ok_or(StaError::NoOutputs)?;
        let circuit_delay = timings[critical_output.index()].lat();

        Ok(Self { timings, critical_pred, circuit_delay, critical_output })
    }

    /// Timing of one net.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range for the analyzed circuit.
    #[must_use]
    pub fn timing(&self, net: NetId) -> &NetTiming {
        &self.timings[net.index()]
    }

    /// Timings of all nets, indexed by [`NetId`].
    #[must_use]
    pub fn timings(&self) -> &[NetTiming] {
        &self.timings
    }

    /// Latest arrival at any primary output (the circuit delay).
    #[must_use]
    pub fn circuit_delay(&self) -> f64 {
        self.circuit_delay
    }

    /// The primary output that sets the circuit delay.
    #[must_use]
    pub fn critical_output(&self) -> NetId {
        self.critical_output
    }

    /// The input net whose LAT determined `net`'s LAT, if `net` is driven
    /// by a gate.
    #[must_use]
    pub fn critical_pred(&self, net: NetId) -> Option<NetId> {
        self.critical_pred[net.index()]
    }
}

/// Supplies the per-net delay noise added during propagation.
///
/// Implemented by the noise-analysis layer; [`NoNoise`] is the noiseless
/// case and a plain slice of per-net values also works.
pub trait NoiseSource {
    /// Delay noise (ps, non-negative) injected at `net`.
    fn delay_noise(&self, net: NetId) -> f64;
}

/// The noiseless [`NoiseSource`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NoNoise;

impl NoiseSource for NoNoise {
    fn delay_noise(&self, _net: NetId) -> f64 {
        0.0
    }
}

impl NoiseSource for [f64] {
    fn delay_noise(&self, net: NetId) -> f64 {
        self.get(net.index()).copied().unwrap_or(0.0)
    }
}

impl NoiseSource for Vec<f64> {
    fn delay_noise(&self, net: NetId) -> f64 {
        self.as_slice().delay_noise(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearDelayModel;
    use dna_netlist::{CellKind, CircuitBuilder, Library};

    fn chain() -> (Circuit, Vec<NetId>) {
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let n1 = b.gate(CellKind::Inv, "u1", &[a]).unwrap();
        let n2 = b.gate(CellKind::Buf, "u2", &[n1]).unwrap();
        b.output(n2);
        (b.build().unwrap(), vec![a, n1, n2])
    }

    #[test]
    fn chain_delays_accumulate() {
        let (c, nets) = chain();
        let r = TimingReport::run(&c, &LinearDelayModel::new(), &StaConfig::default()).unwrap();
        let t_a = r.timing(nets[0]);
        let t1 = r.timing(nets[1]);
        let t2 = r.timing(nets[2]);
        assert_eq!(t_a.lat(), 0.0);
        assert!(t1.lat() > 0.0);
        assert!(t2.lat() > t1.lat());
        assert_eq!(r.circuit_delay(), t2.lat());
        assert_eq!(r.critical_output(), nets[2]);
        // Single-path circuit: EAT == LAT everywhere.
        assert_eq!(t2.eat(), t2.lat());
    }

    #[test]
    fn reconvergence_spreads_window() {
        // a -> inv -> nand(a_inv, buf_chain) : two paths of different length.
        let mut b = CircuitBuilder::new(Library::cmos013());
        let a = b.input("a");
        let short = b.gate(CellKind::Inv, "s", &[a]).unwrap();
        let l1 = b.gate(CellKind::Buf, "l1", &[a]).unwrap();
        let l2 = b.gate(CellKind::Buf, "l2", &[l1]).unwrap();
        let out = b.gate(CellKind::Nand2, "o", &[short, l2]).unwrap();
        b.output(out);
        let c = b.build().unwrap();
        let r = TimingReport::run(&c, &LinearDelayModel::new(), &StaConfig::default()).unwrap();
        let t = r.timing(out);
        assert!(t.lat() > t.eat(), "reconvergent paths must open a window");
        // Critical predecessor is the slow branch.
        assert_eq!(r.critical_pred(out), Some(l2));
    }

    #[test]
    fn injected_noise_propagates_downstream() {
        let (c, nets) = chain();
        let model = LinearDelayModel::new();
        let cfg = StaConfig::default();
        let clean = TimingReport::run(&c, &model, &cfg).unwrap();
        let mut noise = vec![0.0; c.num_nets()];
        noise[nets[1].index()] = 30.0;
        let noisy = TimingReport::run_with_noise(&c, &model, &cfg, &noise).unwrap();
        // LAT shifts by exactly the injected noise at the net and downstream.
        assert!((noisy.timing(nets[1]).lat() - clean.timing(nets[1]).lat() - 30.0).abs() < 1e-9);
        assert!((noisy.circuit_delay() - clean.circuit_delay() - 30.0).abs() < 1e-9);
        // EAT is untouched.
        assert_eq!(noisy.timing(nets[1]).eat(), clean.timing(nets[1]).eat());
    }

    #[test]
    fn negative_noise_rejected() {
        let (c, nets) = chain();
        let mut noise = vec![0.0; c.num_nets()];
        noise[nets[0].index()] = -1.0;
        let err = TimingReport::run_with_noise(
            &c,
            &LinearDelayModel::new(),
            &StaConfig::default(),
            &noise,
        )
        .unwrap_err();
        assert!(matches!(err, StaError::NegativeNoise { .. }));
    }

    #[test]
    fn input_config_respected() {
        let (c, nets) = chain();
        let cfg = StaConfig { input_arrival: 100.0, input_slew: 50.0 };
        let r = TimingReport::run(&c, &LinearDelayModel::new(), &cfg).unwrap();
        assert_eq!(r.timing(nets[0]).lat(), 100.0);
        assert_eq!(r.timing(nets[0]).slew(), 50.0);
    }
}
