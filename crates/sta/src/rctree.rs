//! Distributed-RC interconnect: Elmore delay on RC trees.
//!
//! The workspace's default flow lumps each net's wire into a single
//! grounded capacitance, which is what the paper's linear framework needs.
//! Real extraction produces *distributed* RC trees, and the first-order
//! industry-standard metric on them is the **Elmore delay**: for sink `i`,
//! `T_i = Σ_j R(path(root→i) ∩ path(root→j)) · C_j` — the shared-path
//! resistance weighted by every node capacitance.
//!
//! This module is a self-contained substrate for users who model wires in
//! more detail: build a tree with [`RcTree`], read per-sink delays with
//! [`RcTree::elmore_delays`], or reduce a net to the classic π-model with
//! [`RcTree::pi_model`].

use std::fmt;

/// Index of a node within an [`RcTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RcNode(usize);

impl RcNode {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for RcNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rc{}", self.0)
    }
}

/// A grounded-capacitor RC tree rooted at the driver.
///
/// Units follow the workspace convention: resistance in kΩ, capacitance
/// in fF, delay in ps.
///
/// # Example
///
/// ```
/// use dna_sta::rctree::RcTree;
///
/// // Driver -- 0.1 kΩ -- (5 fF) -- 0.2 kΩ -- (10 fF sink)
/// let mut tree = RcTree::new(0.0);
/// let mid = tree.add_node(tree.root(), 0.1, 5.0);
/// let sink = tree.add_node(mid, 0.2, 10.0);
///
/// let delays = tree.elmore_delays();
/// // T_sink = 0.1 * (5 + 10) + 0.2 * 10 = 3.5 ps
/// assert!((delays[sink.index()] - 3.5).abs() < 1e-9);
/// assert!(delays[mid.index()] < delays[sink.index()]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RcTree {
    /// Parent of each node; the root points at itself.
    parent: Vec<usize>,
    /// Resistance of the branch from the parent into each node (kΩ).
    resistance: Vec<f64>,
    /// Grounded capacitance at each node (fF).
    cap: Vec<f64>,
}

impl RcTree {
    /// Creates a tree whose root (the driver output) carries `root_cap`.
    #[must_use]
    pub fn new(root_cap: f64) -> Self {
        Self { parent: vec![0], resistance: vec![0.0], cap: vec![root_cap] }
    }

    /// The root node.
    #[must_use]
    pub fn root(&self) -> RcNode {
        RcNode(0)
    }

    /// Adds a node connected to `parent` through `resistance` kΩ, with
    /// `cap` fF to ground; returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is not a node of this tree, or if `resistance`
    /// or `cap` is negative or non-finite.
    pub fn add_node(&mut self, parent: RcNode, resistance: f64, cap: f64) -> RcNode {
        assert!(parent.0 < self.parent.len(), "parent {parent} out of range");
        assert!(resistance.is_finite() && resistance >= 0.0, "resistance must be non-negative");
        assert!(cap.is_finite() && cap >= 0.0, "capacitance must be non-negative");
        self.parent.push(parent.0);
        self.resistance.push(resistance);
        self.cap.push(cap);
        RcNode(self.parent.len() - 1)
    }

    /// Number of nodes (including the root).
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the tree has only its root.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.len() == 1
    }

    /// Total grounded capacitance of the tree.
    #[must_use]
    pub fn total_cap(&self) -> f64 {
        self.cap.iter().sum()
    }

    /// Downstream capacitance seen through each node (the node's own cap
    /// plus everything below it).
    #[must_use]
    pub fn downstream_caps(&self) -> Vec<f64> {
        let mut down = self.cap.clone();
        // Children were always appended after their parents, so a reverse
        // scan accumulates bottom-up.
        for i in (1..self.parent.len()).rev() {
            down[self.parent[i]] += down[i];
        }
        down
    }

    /// Elmore delay (ps) from the driver to every node.
    ///
    /// Computed top-down as `T_i = T_parent + R_i · C_downstream(i)`,
    /// which is algebraically identical to the shared-path-resistance
    /// formulation.
    #[must_use]
    pub fn elmore_delays(&self) -> Vec<f64> {
        let down = self.downstream_caps();
        let mut delay = vec![0.0; self.parent.len()];
        for i in 1..self.parent.len() {
            delay[i] = delay[self.parent[i]] + self.resistance[i] * down[i];
        }
        delay
    }

    /// Reduces the tree to the classic O'Brien/Savarino π-model
    /// `(C_near, R, C_far)` that matches the tree's first three admittance
    /// moments at the root.
    ///
    /// Returns `(c_near, r, c_far)`. For a tree without resistance the
    /// reduction degenerates to `(total_cap, 0, 0)`.
    #[must_use]
    pub fn pi_model(&self) -> (f64, f64, f64) {
        // Moments of the admittance at the root: y1 = ΣC, y2 = -Σ T_i C_i,
        // y3 = Σ T_i² C_i (T_i = Elmore delay to node i).
        let t = self.elmore_delays();
        let y1: f64 = self.total_cap();
        let y2: f64 = -t.iter().zip(&self.cap).map(|(&ti, &ci)| ti * ci).sum::<f64>();
        let y3: f64 = t.iter().zip(&self.cap).map(|(&ti, &ci)| ti * ti * ci).sum::<f64>();
        if y2.abs() < 1e-15 || y3.abs() < 1e-15 {
            return (y1, 0.0, 0.0);
        }
        let c_far = y2 * y2 / y3;
        let c_near = y1 - c_far;
        let r = -y3 * y3 / (y2 * y2 * y2);
        (c_near, r, c_far)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Driver -- R1 -- n1(C1) -- R2 -- n2(C2), hand-checked Elmore values.
    fn chain() -> (RcTree, RcNode, RcNode) {
        let mut t = RcTree::new(2.0);
        let n1 = t.add_node(t.root(), 0.5, 4.0);
        let n2 = t.add_node(n1, 0.25, 8.0);
        (t, n1, n2)
    }

    #[test]
    fn chain_elmore_matches_hand_calculation() {
        let (t, n1, n2) = chain();
        let d = t.elmore_delays();
        // T_n1 = 0.5 * (4 + 8) = 6; T_n2 = 6 + 0.25 * 8 = 8.
        assert!((d[n1.index()] - 6.0).abs() < 1e-12);
        assert!((d[n2.index()] - 8.0).abs() < 1e-12);
        assert_eq!(d[t.root().index()], 0.0);
    }

    #[test]
    fn branching_shares_path_resistance() {
        // Root -- R -- stem(C) with two leaves; each leaf's delay includes
        // the stem resistance times *both* leaves' caps.
        let mut t = RcTree::new(0.0);
        let stem = t.add_node(t.root(), 1.0, 0.0);
        let l1 = t.add_node(stem, 0.0, 3.0);
        let l2 = t.add_node(stem, 0.0, 5.0);
        let d = t.elmore_delays();
        assert!((d[l1.index()] - 8.0).abs() < 1e-12);
        assert!((d[l2.index()] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn downstream_caps_accumulate() {
        let (t, n1, _) = chain();
        let down = t.downstream_caps();
        assert!((down[t.root().index()] - 14.0).abs() < 1e-12);
        assert!((down[n1.index()] - 12.0).abs() < 1e-12);
        assert!((t.total_cap() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn pi_model_preserves_total_cap_and_is_physical() {
        let (t, ..) = chain();
        let (c_near, r, c_far) = t.pi_model();
        assert!((c_near + c_far - t.total_cap()).abs() < 1e-9);
        assert!(r > 0.0);
        assert!(c_far > 0.0);
        // Far cap delay through the π resistance approximates the real
        // Elmore delay scale.
        let sink_delay = t.elmore_delays()[2];
        assert!(r * c_far <= sink_delay * 2.0);
    }

    #[test]
    fn resistanceless_tree_degenerates() {
        let mut t = RcTree::new(1.0);
        t.add_node(t.root(), 0.0, 2.0);
        let (c_near, r, c_far) = t.pi_model();
        assert_eq!((c_near, r, c_far), (3.0, 0.0, 0.0));
        assert!(t.elmore_delays().iter().all(|&d| d == 0.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_parent_panics() {
        let mut t = RcTree::new(0.0);
        let _ = t.add_node(RcNode(7), 1.0, 1.0);
    }

    #[test]
    fn empty_and_len() {
        let t = RcTree::new(0.5);
        assert!(t.is_empty());
        assert_eq!(t.len(), 1);
        let (t, ..) = chain();
        assert!(!t.is_empty());
        assert_eq!(t.len(), 3);
    }
}
