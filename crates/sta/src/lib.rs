//! Static timing analysis substrate for delay-noise analysis.
//!
//! Implements the classical machinery the DAC 2007 top-k-aggressors paper
//! builds on (§2):
//!
//! * [`TimingReport`] — forward propagation of earliest/latest arrival
//!   times and slews, producing per-net switching windows ([`NetTiming`]),
//!   with an injection point for per-net delay noise
//!   ([`TimingReport::run_with_noise`]) used by the iterative noise
//!   analysis,
//! * [`critical_path`] / [`top_k_paths`] — the traditional critical-path
//!   reports the paper draws its top-k analogy from,
//! * [`SlackReport`] — required times and slacks,
//! * [`DelayModel`] — pluggable (linear by default) gate delay models,
//! * [`rctree`] — distributed-RC interconnect with Elmore delays and
//!   π-model reduction, for users who model wires beyond the lumped
//!   default.
//!
//! ## Edge canonicalization
//!
//! The linear framework here analyzes a single canonical switching
//! direction: every victim's worst transition is treated as rising and
//! every coupling is assumed to be able to oppose it. This matches the
//! paper's bounding philosophy (noise envelopes are worst-case over
//! alignment) and halves the bookkeeping without changing any of the
//! algorithmic structure being reproduced.
//!
//! # Example
//!
//! ```
//! use dna_netlist::{CircuitBuilder, Library, CellKind};
//! use dna_sta::{TimingReport, StaConfig, LinearDelayModel, critical_path};
//!
//! let mut b = CircuitBuilder::new(Library::cmos013());
//! let a = b.input("a");
//! let b2 = b.input("b");
//! let y = b.gate(CellKind::Nand2, "u1", &[a, b2])?;
//! b.output(y);
//! let circuit = b.build()?;
//!
//! let report = TimingReport::run(&circuit, &LinearDelayModel::new(), &StaConfig::default())?;
//! let path = critical_path(&circuit, &report);
//! assert_eq!(path.arrival(), report.circuit_delay());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Accepted `clippy::pedantic` baseline. The CI_FULL pedantic triage in
// `ci.sh` is non-gating; this allowlist keeps its output limited to new
// findings. Numeric casts between index/size types are pervasive and
// intentional here, exact float comparison is the point of the
// bit-identity contracts, and short or similar names mirror the paper's
// notation.
#![allow(
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::many_single_char_names,
    clippy::missing_panics_doc,
    clippy::similar_names,
    clippy::too_many_lines
)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod delay_model;
mod error;
mod path;
mod slack;
mod topk_paths;
mod window;

pub mod rctree;

pub use arrival::{NoNoise, NoiseSource, StaConfig, TimingReport};
pub use delay_model::{DelayModel, DeratedDelayModel, LinearDelayModel};
pub use error::StaError;
pub use path::{critical_path, path_to, TimingPath};
pub use slack::SlackReport;
pub use topk_paths::top_k_paths;
pub use window::NetTiming;
