//! Per-net timing data: switching windows and slews.

use std::fmt;

use dna_waveform::{Edge, TimeInterval, Transition};

/// The timing state of one net after an arrival-time propagation.
///
/// * `window` — the `[EAT, LAT]` interval of possible 50 %-Vdd switching
///   instants (the paper's timing window, §2),
/// * `slew` — the full-swing transition time. In the linear delay model the
///   slew depends only on the driving cell and its load, not on when the
///   input arrived, so a single slew covers the whole window.
///
/// # Example
///
/// ```
/// use dna_sta::NetTiming;
///
/// let t = NetTiming::new(100.0, 140.0, 20.0);
/// assert_eq!(t.eat(), 100.0);
/// assert_eq!(t.lat(), 140.0);
/// assert_eq!(t.latest_transition().t50(), 140.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetTiming {
    window: TimeInterval,
    slew: f64,
}

impl NetTiming {
    /// Creates timing data from earliest/latest arrival and slew.
    ///
    /// # Panics
    ///
    /// Panics if `eat > lat` or `slew <= 0`.
    #[must_use]
    pub fn new(eat: f64, lat: f64, slew: f64) -> Self {
        assert!(slew > 0.0, "slew must be positive, got {slew}");
        Self { window: TimeInterval::new(eat, lat), slew }
    }

    /// Creates timing data **without validating it**.
    ///
    /// Inverted windows, non-finite bounds and non-positive slews all pass
    /// through. Intended only for IR-level tooling — the `dna-lint`
    /// verifier's known-bad corpus exercises the timing rules that
    /// [`new`](Self::new) makes unrepresentable.
    #[must_use]
    pub fn from_raw_unchecked(eat: f64, lat: f64, slew: f64) -> Self {
        Self { window: TimeInterval::from_bounds_unchecked(eat, lat), slew }
    }

    /// Earliest arrival time of the 50 % crossing.
    #[must_use]
    pub fn eat(&self) -> f64 {
        self.window.lo()
    }

    /// Latest arrival time of the 50 % crossing.
    #[must_use]
    pub fn lat(&self) -> f64 {
        self.window.hi()
    }

    /// The switching window `[EAT, LAT]`.
    #[must_use]
    pub fn window(&self) -> TimeInterval {
        self.window
    }

    /// Full-swing transition time.
    #[must_use]
    pub fn slew(&self) -> f64 {
        self.slew
    }

    /// The latest possible transition as a waveform (worst-case victim
    /// transition for delay-noise superposition). The analysis canonicalizes
    /// on rising victims; see the crate docs.
    #[must_use]
    pub fn latest_transition(&self) -> Transition {
        Transition::from_t50(self.lat(), self.slew, Edge::Rising)
    }

    /// Timing with the LAT pushed later by `delay` (delay noise widens the
    /// window on the late side only).
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative.
    #[must_use]
    pub fn with_extra_lat(&self, delay: f64) -> NetTiming {
        assert!(delay >= 0.0, "delay noise cannot be negative, got {delay}");
        NetTiming::new(self.eat(), self.lat() + delay, self.slew)
    }

    /// Timing whose window is the hull of both windows (fixpoint joins).
    #[must_use]
    pub fn hull(&self, other: &NetTiming) -> NetTiming {
        let w = self.window.hull(other.window);
        NetTiming::new(w.lo(), w.hi(), self.slew.max(other.slew))
    }
}

impl fmt::Display for NetTiming {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "window {} slew {:.2}", self.window, self.slew)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let t = NetTiming::new(5.0, 9.0, 2.0);
        assert_eq!(t.eat(), 5.0);
        assert_eq!(t.lat(), 9.0);
        assert_eq!(t.slew(), 2.0);
        assert_eq!(t.window().width(), 4.0);
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn inverted_window_panics() {
        let _ = NetTiming::new(9.0, 5.0, 2.0);
    }

    #[test]
    fn latest_transition_t50() {
        let t = NetTiming::new(0.0, 42.0, 8.0);
        let tr = t.latest_transition();
        assert_eq!(tr.t50(), 42.0);
        assert_eq!(tr.slew(), 8.0);
    }

    #[test]
    fn extra_lat_widens_late_side() {
        let t = NetTiming::new(1.0, 2.0, 3.0).with_extra_lat(5.0);
        assert_eq!(t.eat(), 1.0);
        assert_eq!(t.lat(), 7.0);
    }

    #[test]
    fn hull_joins_windows() {
        let a = NetTiming::new(0.0, 4.0, 2.0);
        let b = NetTiming::new(2.0, 9.0, 5.0);
        let h = a.hull(&b);
        assert_eq!(h.eat(), 0.0);
        assert_eq!(h.lat(), 9.0);
        assert_eq!(h.slew(), 5.0);
    }
}
