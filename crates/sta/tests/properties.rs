//! Property tests for the STA substrate.

use dna_netlist::generator::{generate, GeneratorConfig};
use dna_netlist::Circuit;
use dna_sta::{
    critical_path, top_k_paths, DeratedDelayModel, LinearDelayModel, SlackReport, StaConfig,
    TimingReport,
};
use proptest::prelude::*;

fn circuit_strategy() -> impl Strategy<Value = Circuit> {
    (0u64..500, 5usize..40).prop_map(|(seed, gates)| {
        generate(&GeneratorConfig::new(gates, 0).with_seed(seed)).expect("generator succeeds")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arrival times respect topology: every gate output's LAT is at
    /// least its critical input's LAT, and EAT <= LAT everywhere.
    #[test]
    fn arrivals_respect_topology(circuit in circuit_strategy()) {
        let r = TimingReport::run(
            &circuit, &LinearDelayModel::new(), &StaConfig::default()).unwrap();
        for net in circuit.net_ids() {
            let t = r.timing(net);
            prop_assert!(t.eat() <= t.lat() + 1e-9);
            if let Some(pred) = r.critical_pred(net) {
                prop_assert!(t.lat() > r.timing(pred).lat());
            }
        }
        prop_assert!(r.circuit_delay().is_finite());
    }

    /// The critical path is a connected input-to-output chain whose
    /// arrival equals the circuit delay.
    #[test]
    fn critical_path_is_consistent(circuit in circuit_strategy()) {
        let r = TimingReport::run(
            &circuit, &LinearDelayModel::new(), &StaConfig::default()).unwrap();
        let p = critical_path(&circuit, &r);
        prop_assert!(circuit.net(p.nets()[0]).is_input());
        prop_assert!(circuit.net(p.endpoint()).is_output());
        prop_assert!((p.arrival() - r.circuit_delay()).abs() < 1e-9);
        // LATs strictly increase along the path.
        for w in p.nets().windows(2) {
            prop_assert!(r.timing(w[0]).lat() < r.timing(w[1]).lat());
        }
    }

    /// Derating every delay scales the circuit delay accordingly.
    #[test]
    fn derating_scales_delay(circuit in circuit_strategy(), factor in 1.0f64..3.0) {
        let cfg = StaConfig::default();
        let base = TimingReport::run(&circuit, &LinearDelayModel::new(), &cfg).unwrap();
        let derated = TimingReport::run(
            &circuit, &DeratedDelayModel::new(factor, 1.0), &cfg).unwrap();
        prop_assert!(
            (derated.circuit_delay() - factor * base.circuit_delay()).abs() < 1e-6,
            "derated {} != {} * {}", derated.circuit_delay(), factor, base.circuit_delay()
        );
    }

    /// Top-k paths are sorted, distinct, and headed by the critical path.
    #[test]
    fn top_k_paths_sorted_distinct(circuit in circuit_strategy(), k in 1usize..6) {
        let model = LinearDelayModel::new();
        let cfg = StaConfig::default();
        let r = TimingReport::run(&circuit, &model, &cfg).unwrap();
        let paths = top_k_paths(&circuit, &model, &cfg, k);
        prop_assert!(!paths.is_empty());
        prop_assert!((paths[0].arrival() - r.circuit_delay()).abs() < 1e-9);
        for w in paths.windows(2) {
            prop_assert!(w[0].arrival() + 1e-9 >= w[1].arrival());
        }
        for (i, a) in paths.iter().enumerate() {
            for b in &paths[i + 1..] {
                prop_assert!(a.nets() != b.nets(), "duplicate path in top-k");
            }
        }
    }

    /// Slack at the exact clock: worst slack is zero (critical path), and
    /// no constrained net has negative slack.
    #[test]
    fn slack_at_exact_clock(circuit in circuit_strategy()) {
        let model = LinearDelayModel::new();
        let r = TimingReport::run(&circuit, &model, &StaConfig::default()).unwrap();
        let s = SlackReport::compute(&circuit, &model, &r, r.circuit_delay());
        prop_assert!(s.worst_slack().abs() < 1e-6);
        for net in circuit.net_ids() {
            prop_assert!(s.slack(net) > -1e-6);
        }
    }

    /// Injected noise never speeds the circuit up, and the shift is
    /// bounded by the sum of all injections.
    #[test]
    fn injected_noise_never_speeds_up(circuit in circuit_strategy(), seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let model = LinearDelayModel::new();
        let cfg = StaConfig::default();
        let base = TimingReport::run(&circuit, &model, &cfg).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let noise: Vec<f64> =
            (0..circuit.num_nets()).map(|_| rng.gen_range(0.0..50.0)).collect();
        let noisy = TimingReport::run_with_noise(&circuit, &model, &cfg, &noise).unwrap();
        prop_assert!(noisy.circuit_delay() + 1e-9 >= base.circuit_delay());
        let total: f64 = noise.iter().sum();
        prop_assert!(noisy.circuit_delay() <= base.circuit_delay() + total + 1e-9);
    }
}
