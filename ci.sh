#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# The build environment is fully offline; every cargo invocation says so.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test"
cargo test --workspace --offline -q

echo "== bench smoke (serial vs parallel identity + report schema)"
smoke_json="$(mktemp -t bench_smoke.XXXXXX.json)"
smoke_ckt="$(mktemp -t whatif_smoke.XXXXXX.ckt)"
trap 'rm -f "$smoke_json" "$smoke_ckt"' EXIT
cargo run -q -p dna-cli --offline -- bench --quick --k 2 --json --out "$smoke_json" >/dev/null
cargo run -q -p dna-cli --offline -- bench --check "$smoke_json"

echo "== whatif smoke (incremental session identity + dirty-closure audit)"
cargo run -q -p dna-cli --offline -- generate --gates 40 --couplings 30 --seed 9 --o "$smoke_ckt"
cargo run -q -p dna-cli --offline -- whatif "$smoke_ckt" --k 3 --audit >/dev/null
cargo run -q -p dna-cli --offline -- whatif "$smoke_ckt" --mode add --k 3 --audit >/dev/null

echo "== damping identity smoke (semantic == structural, certificates audited)"
# Both dampings must pass the same from-scratch audit on the same circuit;
# the semantic run additionally re-verifies its certificates and
# spot-checks proven-clean victims.
cargo run -q -p dna-cli --offline -- whatif "$smoke_ckt" --k 3 --damping structural --audit >/dev/null
cargo run -q -p dna-cli --offline -- whatif "$smoke_ckt" --k 3 --damping semantic --audit >/dev/null

echo "== deep lint certificate check (i1)"
smoke_i1="$(mktemp -t lint_i1.XXXXXX.ckt)"
trap 'rm -f "$smoke_json" "$smoke_ckt" "$smoke_i1"' EXIT
cargo run -q -p dna-cli --offline -- generate --bench i1 --seed 42 --o "$smoke_i1" >/dev/null
cargo run -q -p dna-cli --offline -- lint "$smoke_i1" --deep >/dev/null

echo "== scheduler smoke (i1: threads 4 bit-identical to threads 1)"
# Strip the run-local diagnostics (wall-clock runtime, scheduler
# counters) and compare everything else — the couplings, the delays.
sched_fingerprint() {
  cargo run -q -p dna-cli --offline -- topk "$smoke_i1" --k 3 --threads "$1" \
    | grep -v '^scheduler:' | sed 's/ in [0-9.]*[a-zµ]*s$//'
}
t1="$(sched_fingerprint 1)"
t4="$(sched_fingerprint 4)"
[[ "$t1" == "$t4" ]] || {
  echo "scheduler smoke: threads=4 diverged from the serial reference"
  diff <(echo "$t1") <(echo "$t4") || true
  exit 1
}

echo "== batch whatif smoke (shared sweep identity + order independence)"
smoke_batch="$(mktemp -t whatif_smoke.XXXXXX.batch)"
trap 'rm -f "$smoke_json" "$smoke_ckt" "$smoke_i1" "$smoke_batch"' EXIT
printf -- '-0\n-1\n-0 -2\n' > "$smoke_batch"
out="$(cargo run -q -p dna-cli --offline -- whatif "$smoke_ckt" --k 3 --batch "$smoke_batch" --audit)"
echo "$out" | grep -q "audit: all 3 scenario(s) == from-scratch" \
  || { echo "batch smoke failed its audit"; exit 1; }
cargo run -q -p dna-cli --offline -- topk "$smoke_ckt" --mode elim --k 4 --peel --audit >/dev/null

echo "== fault-injection smoke (typed errors / quarantine / degradation, no panics)"
cargo test --offline -q --test fault_injection >/dev/null

echo "== session artifact round trip (save -> load -> audit, then corrupt -> fallback)"
smoke_art="$(mktemp -t whatif_smoke.XXXXXX.dna)"
trap 'rm -f "$smoke_json" "$smoke_ckt" "$smoke_i1" "$smoke_batch" "$smoke_art"' EXIT
cargo run -q -p dna-cli --offline -- whatif "$smoke_ckt" --k 3 --save "$smoke_art" >/dev/null
# A clean artifact must resume AND still pass the bit-identity audit.
out="$(cargo run -q -p dna-cli --offline -- whatif "$smoke_ckt" --k 3 --load "$smoke_art" --audit)"
echo "$out" | grep -q "resumed session" || { echo "artifact did not resume"; exit 1; }
# A truncated artifact must be detected and fall back to a full sweep —
# the command still succeeds and still passes the audit.
head -c 64 "$smoke_art" > "$smoke_art.trunc" && mv "$smoke_art.trunc" "$smoke_art"
out="$(cargo run -q -p dna-cli --offline -- whatif "$smoke_ckt" --k 3 --load "$smoke_art" --audit 2>&1)"
echo "$out" | grep -q "cannot resume" || { echo "corruption went undetected"; exit 1; }
echo "$out" | grep -q "audit: incremental == from-scratch" \
  || { echo "fallback run failed its audit"; exit 1; }

echo "== serve smoke (daemon scenario over loopback == local whatif, clean shutdown)"
serve_log="$(mktemp -t serve_smoke.XXXXXX.log)"
trap 'rm -f "$smoke_json" "$smoke_ckt" "$smoke_i1" "$smoke_batch" "$smoke_art" "$serve_log"' EXIT
cargo build -q -p dna-cli --offline
cargo run -q -p dna-cli --offline -- serve --port 0 > "$serve_log" &
serve_pid=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$serve_log" && break
  sleep 0.1
done
grep -q "listening on" "$serve_log" || {
  echo "daemon never announced its port"; kill "$serve_pid" 2>/dev/null; exit 1
}
port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$serve_log")"
out="$(cargo run -q -p dna-cli --offline -- client --port "$port" \
  "{\"op\":\"open\",\"tenant\":\"smoke\",\"circuit\":\"$smoke_ckt\",\"mode\":\"elim\",\"k\":3}" \
  '{"op":"scenario","tenant":"smoke","remove":[0]}' \
  '{"op":"stats"}' \
  '{"op":"shutdown"}')"
echo "$out" | grep -q '"kind":"opened"' || { echo "serve smoke: open failed: $out"; exit 1; }
echo "$out" | grep -q '"kind":"bye"' || { echo "serve smoke: no shutdown ack: $out"; exit 1; }
wait "$serve_pid" || { echo "serve smoke: daemon exited non-zero"; exit 1; }
# The daemon's answer must be bit-identical to a local what-if session
# evaluating the same scenario — compare identity fingerprints.
served_fp="$(echo "$out" | sed -n 's/.*"kind":"scenario".*"fingerprint":"\([0-9a-f]*\)".*/\1/p' | head -1)"
printf -- '-0\n' > "$smoke_batch"
local_fp="$(cargo run -q -p dna-cli --offline -- whatif "$smoke_ckt" --k 3 --batch "$smoke_batch" --fingerprint \
  | sed -n 's/.*fingerprint #0: \([0-9a-f]*\).*/\1/p')"
[[ -n "$served_fp" && "$served_fp" == "$local_fp" ]] || {
  echo "serve smoke: daemon fingerprint ($served_fp) != local whatif ($local_fp)"; exit 1
}

echo "== crash recovery smoke (abort mid-save via DNA_CRASH_POINT, recover, bit-compare)"
crash_dir="$(mktemp -d -t crash_smoke.XXXXXX)"
trap 'rm -f "$smoke_json" "$smoke_ckt" "$smoke_i1" "$smoke_batch" "$smoke_art" "$serve_log"; rm -rf "$crash_dir"' EXIT

start_crash_daemon() { # $1 = state dir, $2 (optional) = --recover
  : > "$serve_log"
  cargo run -q -p dna-cli --offline -- serve --port 0 --dir "$1" ${2:-} > "$serve_log" 2>/dev/null &
  serve_pid=$!
  for _ in $(seq 1 100); do
    grep -q "listening on" "$serve_log" && break
    sleep 0.1
  done
  grep -q "listening on" "$serve_log" || { echo "crash smoke: daemon never listened"; exit 1; }
  port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$serve_log")"
}
open_req="{\"op\":\"open\",\"tenant\":\"crash\",\"circuit\":\"$smoke_ckt\",\"mode\":\"elim\",\"k\":3}"
commit_req='{"op":"commit","tenant":"crash","remove":[0]}'

# Oracle: the fingerprints a clean open (generation 0) and first commit
# (generation 1) produce. The engine is deterministic, so any recovered
# generation must reproduce one of these exact fingerprints.
mkdir -p "$crash_dir/oracle"
start_crash_daemon "$crash_dir/oracle"
oracle="$(cargo run -q -p dna-cli --offline -- client --port "$port" \
  "$open_req" "$commit_req" '{"op":"shutdown"}')"
wait "$serve_pid" || { echo "crash smoke: oracle daemon exited non-zero"; exit 1; }
open_fp="$(echo "$oracle" | sed -n 's/.*"kind":"opened".*"fingerprint":"\([0-9a-f]*\)".*/\1/p' | head -1)"
commit_fp="$(echo "$oracle" | sed -n 's/.*"kind":"committed".*"fingerprint":"\([0-9a-f]*\)".*/\1/p' | head -1)"
[[ -n "$open_fp" && -n "$commit_fp" ]] || { echo "crash smoke: oracle fingerprints missing: $oracle"; exit 1; }

# One tracked crash point in the default gate: abort with half a delta
# record on disk (kill -9 semantics), then restart with --recover and
# require the tenant back at its last committed generation, bit-exactly.
run_crash_point() { # $1 = crash point
  local state="$crash_dir/state-$1"
  mkdir -p "$state"
  DNA_CRASH_POINT="$1" start_crash_daemon "$state"
  cargo run -q -p dna-cli --offline -- client --port "$port" \
    "$open_req" "$commit_req" >/dev/null 2>&1 || true
  if wait "$serve_pid" 2>/dev/null; then
    echo "crash smoke: daemon survived armed crash point $1"; exit 1
  fi
  start_crash_daemon "$state" --recover
  grep -q "recovery complete" "$serve_log" || { echo "crash smoke: $1 recovery incomplete"; exit 1; }
  case "$1" in
    pre-append|mid-append)
      # The delta never committed: back to the open checkpoint.
      grep -qF "recovered tenant \`crash\` at generation 0 (fingerprint $open_fp)" "$serve_log" \
        || { echo "crash smoke: $1 did not recover generation 0"; cat "$serve_log"; exit 1; } ;;
    pre-sync)
      # The whole record reached the file before the abort; a
      # same-machine crash cannot roll back written bytes.
      grep -qF "recovered tenant \`crash\` at generation 1 (fingerprint $commit_fp)" "$serve_log" \
        || { echo "crash smoke: $1 did not recover generation 1"; cat "$serve_log"; exit 1; } ;;
    *)
      # Checkpoint/manifest-path points abort inside the open itself:
      # the open was never acknowledged, so nothing may be resumed.
      grep -q "recovery complete (0 resumed, 0 quarantined)" "$serve_log" \
        || { echo "crash smoke: $1 resumed an unacked tenant"; cat "$serve_log"; exit 1; } ;;
  esac
  cargo run -q -p dna-cli --offline -- client --port "$port" '{"op":"shutdown"}' >/dev/null
  wait "$serve_pid" || { echo "crash smoke: recovered daemon exited non-zero after $1"; exit 1; }
}
run_crash_point mid-append

# CI_FULL=1 additionally runs the #[ignore]d suites (full i1-i10
# determinism + incremental + damping identity + the daemon soak) in
# release mode —
# minutes, not seconds, so opt-in.
if [[ "${CI_FULL:-0}" == "1" ]]; then
  echo "== full ignored suites (release)"
  cargo test --workspace --offline --release -q -- --ignored

  # Kill the daemon at every commit-protocol step, not just the tracked
  # one: recovery must land on a committed generation (or, for steps
  # inside the open itself, acknowledge nothing) after each of them.
  echo "== crash recovery sweep (every DNA_CRASH_POINT)"
  for point in pre-append mid-append pre-sync pre-temp mid-temp pre-rename pre-manifest; do
    run_crash_point "$point"
  done

  # Loom-style steal-order stress: DNA_SCHED_SHUFFLE deterministically
  # perturbs deque seeding and steal direction without being allowed to
  # move an output bit. Sweep a handful of seeds against the serial
  # reference; any divergence is a scheduler determinism bug.
  echo "== scheduler steal-order stress (DNA_SCHED_SHUFFLE sweep)"
  for seed in 1 2 7 31 9001; do
    ts="$(DNA_SCHED_SHUFFLE=$seed sched_fingerprint 4)"
    [[ "$t1" == "$ts" ]] || {
      echo "steal-order stress: shuffle seed $seed diverged from serial"
      diff <(echo "$t1") <(echo "$ts") || true
      exit 1
    }
  done

  # Pedantic clippy is triage only: surface new findings without gating
  # the build on them. The accepted baseline lives in-tree as
  # crate-level `#![allow(clippy::...)]` attributes; anything printed
  # here is a candidate for fixing or allowlisting, not a CI failure.
  echo "== clippy pedantic triage (non-gating)"
  cargo clippy --workspace --all-targets --offline -- -W clippy::pedantic || true
fi

echo "CI OK"
