#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# The build environment is fully offline; every cargo invocation says so.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test"
cargo test --workspace --offline -q

echo "== bench smoke (serial vs parallel identity + report schema)"
smoke_json="$(mktemp -t bench_smoke.XXXXXX.json)"
trap 'rm -f "$smoke_json"' EXIT
cargo run -q -p dna-cli --offline -- bench --quick --k 2 --json --out "$smoke_json" >/dev/null
cargo run -q -p dna-cli --offline -- bench --check "$smoke_json"

echo "CI OK"
