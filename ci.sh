#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# The build environment is fully offline; every cargo invocation says so.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test"
cargo test --workspace --offline -q

echo "CI OK"
