//! Aggressor census: a deep dive into one design's noise structure.
//!
//! Prints the per-net timing windows, the worst victims, each coupling's
//! aggressor order (paper §2: primary aggressors get order `t + 1` where
//! `t` counts fanin couplings), and the false aggressors that
//! timing-window analysis can discharge (refs [10][11]).
//!
//! Run with: `cargo run --release --example aggressor_census`

use topk_aggressors::netlist::suite;
use topk_aggressors::noise::order::aggressor_order;
use topk_aggressors::noise::{false_couplings, ExclusionSet, NoiseAnalysis, NoiseConfig};
use topk_aggressors::sta::top_k_paths;
use topk_aggressors::sta::{LinearDelayModel, StaConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = suite::benchmark("i1", 42)?;
    println!("design: {}\n", circuit.stats());

    let config = NoiseConfig::default();
    let report = NoiseAnalysis::new(&circuit, config).run()?;
    println!(
        "noise analysis: {:.3} ns noisy vs {:.3} ns clean, {} iterations\n",
        report.circuit_delay() / 1000.0,
        report.noiseless_delay() / 1000.0,
        report.iterations()
    );

    // --- Worst victims by injected delay noise. -------------------------
    let mut victims: Vec<_> =
        circuit.net_ids().map(|n| (n, report.delay_noise(n))).filter(|&(_, dn)| dn > 0.0).collect();
    victims.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite noise"));
    println!("worst victims:");
    for &(net, dn) in victims.iter().take(5) {
        let t = report.noisy_timing().timing(net);
        println!(
            "  {:>6}  +{dn:6.1} ps  window {} ({} couplings)",
            circuit.net(net).name(),
            t.window(),
            circuit.couplings_on(net).len()
        );
    }

    // --- Aggressor orders: how indirect is the noise? -------------------
    let mut order_histogram = std::collections::BTreeMap::new();
    for net in circuit.net_ids() {
        if circuit.couplings_on(net).is_empty() {
            continue;
        }
        *order_histogram.entry(aggressor_order(&circuit, net)).or_insert(0usize) += 1;
    }
    println!("\naggressor order histogram (order = 1 + fanin couplings):");
    for (order, count) in order_histogram.iter().take(8) {
        println!("  order {order:>3}: {count} nets");
    }

    // --- False aggressors. ----------------------------------------------
    let falses = false_couplings(
        &circuit,
        &config,
        report.noisy_timing().timings(),
        &ExclusionSet::new(),
        0.0,
    );
    println!(
        "\nfalse (victim, coupling) pairs: {} of {} directions can be discharged",
        falses.len(),
        2 * circuit.num_couplings()
    );

    // --- The top-k *paths* analogy from the paper's introduction. -------
    let paths = top_k_paths(&circuit, &LinearDelayModel::new(), &StaConfig::default(), 3);
    println!("\ntop-3 critical paths (noiseless):");
    for (i, p) in paths.iter().enumerate() {
        println!("  #{}: {:.3} ns over {} nets", i + 1, p.arrival() / 1000.0, p.len());
    }
    Ok(())
}
