//! Quickstart: build a tiny coupled design by hand, run noise analysis
//! and ask for its top-k aggressor sets.
//!
//! Run with: `cargo run --example quickstart`

use topk_aggressors::netlist::{format, CellKind, CircuitBuilder, Library};
use topk_aggressors::noise::{NoiseAnalysis, NoiseConfig};
use topk_aggressors::sta::{critical_path, LinearDelayModel, StaConfig, TimingReport};
use topk_aggressors::topk::{TopKAnalysis, TopKConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Build a circuit: two logic paths with three coupling caps. --
    let mut b = CircuitBuilder::new(Library::cmos013());
    let a = b.input("a");
    let sel = b.input("sel");
    let x = b.input("x");

    // Victim path: a -> v1 -> v2 -> out (the timing-critical chain).
    let v1 = b.gate(CellKind::Buf, "v1", &[a])?;
    let v2 = b.gate(CellKind::Nand2, "v2", &[v1, sel])?;
    let out = b.gate(CellKind::Inv, "out", &[v2])?;
    b.output(out);

    // Aggressor path: x -> g1 -> g2.
    let g1 = b.gate(CellKind::Buf, "g1", &[x])?;
    let g2 = b.gate(CellKind::Inv, "g2", &[g1])?;
    b.output(g2);

    // Parasitic couplings from layout proximity.
    b.coupling(v2, g1, 9.0)?; // strong, right on the critical net
    b.coupling(v1, g2, 4.0)?;
    b.coupling(out, g2, 2.5)?;
    let circuit = b.build()?;
    println!("circuit: {}", circuit.stats());

    // --- 2. Classic STA: windows and the critical path. ---------------
    let timing = TimingReport::run(&circuit, &LinearDelayModel::new(), &StaConfig::default())?;
    println!("noiseless circuit delay: {:.1} ps", timing.circuit_delay());
    let path = critical_path(&circuit, &timing);
    let names: Vec<&str> = path.nets().iter().map(|&n| circuit.net(n).name()).collect();
    println!("critical path: {}", names.join(" -> "));

    // --- 3. Iterative crosstalk noise analysis. ------------------------
    let noise = NoiseAnalysis::new(&circuit, NoiseConfig::default()).run()?;
    println!(
        "with crosstalk: {:.1} ps (+{:.1} ps, {} iterations to converge)",
        noise.circuit_delay(),
        noise.total_delay_noise(),
        noise.iterations()
    );

    // --- 4. Top-k aggressor sets. --------------------------------------
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());

    let add = engine.addition_set(2)?;
    println!(
        "top-2 addition set: {} pushes the quiet delay {:.1} -> {:.1} ps",
        add.set(),
        add.delay_without(),
        add.delay_with()
    );

    let del = engine.elimination_set(2)?;
    println!(
        "top-2 elimination set: fixing {} recovers {:.1} -> {:.1} ps",
        del.set(),
        del.delay_before(),
        del.delay_after()
    );

    // --- 5. Save the design in the text format. ------------------------
    let text = format::write(&circuit);
    let reloaded = format::parse(&text)?;
    assert_eq!(reloaded.num_couplings(), circuit.num_couplings());
    println!("netlist round-trips through the .ckt text format ({} bytes)", text.len());
    Ok(())
}
