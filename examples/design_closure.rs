//! Design-closure workflow: spend a limited fixing budget where it
//! matters most.
//!
//! The paper's introduction motivates the elimination set with exactly
//! this scenario: "if a designer can eliminate only 10 coupling
//! situations (e.g., through shielding or spacing), then the top-10
//! aggressor elimination set exactly points to the set … which must be
//! fixed to obtain the maximum reduction in delay noise."
//!
//! This example walks an i2-class design through three fix rounds and
//! compares against the naive strategy the paper criticizes (keep only
//! the largest coupling caps).
//!
//! Run with: `cargo run --release --example design_closure`

use topk_aggressors::netlist::suite;
use topk_aggressors::noise::{CouplingMask, NoiseAnalysis, NoiseConfig};
use topk_aggressors::topk::{naive, TopKAnalysis, TopKConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = suite::benchmark("i2", 42)?;
    println!("design: {}", circuit.stats());

    let noise = NoiseAnalysis::new(&circuit, NoiseConfig::default());
    let noisy = noise.run()?;
    let quiet = noise.run_with_mask(&CouplingMask::none(&circuit))?;
    println!(
        "delay: {:.3} ns noisy, {:.3} ns noiseless ({:.0} ps of crosstalk)\n",
        noisy.circuit_delay() / 1000.0,
        quiet.circuit_delay() / 1000.0,
        noisy.circuit_delay() - quiet.circuit_delay()
    );

    // --- Fix rounds: budget of 5 couplings per round. -------------------
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    println!("fix rounds (budget 5 couplings per round, peeled elimination):");
    let mut fixed = CouplingMask::all(&circuit);
    let mut current = noisy.circuit_delay();
    for round in 1..=3 {
        let result = engine.elimination_set_peeled(round * 5, 5)?;
        let chosen: Vec<_> =
            result.couplings().iter().filter(|&&cc| fixed.is_enabled(cc)).copied().collect();
        fixed = fixed.without(&chosen);
        let after = noise.run_with_mask(&fixed)?.circuit_delay();
        println!(
            "  round {round}: fixed {:2} couplings, delay {:.3} -> {:.3} ns",
            chosen.len(),
            current / 1000.0,
            after / 1000.0
        );
        current = after;
    }

    // --- The naive alternative the paper argues against. ----------------
    // Keep, per victim, only its 2 largest coupling caps — everything else
    // is "fixed". How many fixes does that cost, and what does it buy?
    let naive_mask = naive::heuristic_mask(&circuit, 2);
    let naive_fixes = circuit.num_couplings() - naive_mask.enabled_count();
    let naive_delay = noise.run_with_mask(&naive_mask)?.circuit_delay();
    println!(
        "\nnaive per-victim top-2-by-cap: {} fixes for {:.3} ns",
        naive_fixes,
        naive_delay / 1000.0
    );
    println!(
        "targeted top-k: {} fixes for {:.3} ns — {}",
        circuit.num_couplings() - fixed.enabled_count(),
        current / 1000.0,
        if current <= naive_delay {
            "same or better delay at a fraction of the effort"
        } else {
            "the naive mask fixed far more couplings for its delay"
        }
    );
    Ok(())
}
