//! Non-monotonicity of top-k aggressor sets (paper Fig. 4), shown on a
//! real circuit rather than bare waveforms.
//!
//! A strong pair of aggressors whose windows sit early produce little
//! noise individually, while a weaker aggressor aligned with the victim's
//! crossing wins top-1; jointly the early pair wins top-2. The example
//! verifies the effect with exhaustive measurement, then shows that the
//! implicit-enumeration engine reaches the same answer.
//!
//! Run with: `cargo run --example nonmonotonic`

use topk_aggressors::netlist::{CellKind, CircuitBuilder, CouplingId, Library};
use topk_aggressors::noise::{CouplingMask, NoiseAnalysis, NoiseConfig};
use topk_aggressors::topk::{TopKAnalysis, TopKConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Victim: a long buffer chain so its crossing comes late.
    let mut b = CircuitBuilder::new(Library::cmos013());
    let a = b.input("a");
    let mut v = a;
    for i in 0..6 {
        v = b.gate(CellKind::Buf, format!("v{i}"), &[v])?;
    }
    b.output(v);

    // a1: aggressor through a similar chain — its window overlaps the
    // victim's crossing but couples modestly.
    let x1 = b.input("x1");
    let mut a1 = x1;
    for i in 0..5 {
        a1 = b.gate(CellKind::Buf, format!("a1_{i}"), &[a1])?;
    }
    b.output(a1);
    let cc1 = b.coupling(a1, v, 4.0)?;

    // a2, a3: strong aggressors switching early (short paths), with slow
    // output slews (heavy wire) so their noise tails just reach the
    // victim's crossing.
    let x2 = b.input("x2");
    let x3 = b.input("x3");
    let a2 = b.gate(CellKind::Buf, "a2", &[x2])?;
    let a3 = b.gate(CellKind::Buf, "a3", &[x3])?;
    b.wire_cap(a2, 60.0)?;
    b.wire_cap(a3, 60.0)?;
    b.output(a2);
    b.output(a3);
    let cc2 = b.coupling(a2, v, 11.0)?;
    let cc3 = b.coupling(a3, v, 11.0)?;
    let circuit = b.build()?;

    // --- Ground truth by exhaustive measurement. ------------------------
    let noise = NoiseAnalysis::new(&circuit, NoiseConfig::default());
    let delay = |ids: &[CouplingId]| -> Result<f64, Box<dyn std::error::Error>> {
        Ok(noise.run_with_mask(&CouplingMask::none(&circuit).with(ids))?.circuit_delay())
    };
    let quiet = delay(&[])?;
    println!("noiseless delay: {quiet:.1} ps\n");
    let singles = [("{a1}", vec![cc1]), ("{a2}", vec![cc2]), ("{a3}", vec![cc3])];
    let pairs =
        [("{a1,a2}", vec![cc1, cc2]), ("{a1,a3}", vec![cc1, cc3]), ("{a2,a3}", vec![cc2, cc3])];
    let mut best1 = ("", f64::MIN);
    for (label, ids) in &singles {
        let d = delay(ids)? - quiet;
        println!("  {label:<8} adds {d:6.2} ps");
        if d > best1.1 {
            best1 = (label, d);
        }
    }
    let mut best2 = ("", f64::MIN);
    for (label, ids) in &pairs {
        let d = delay(ids)? - quiet;
        println!("  {label:<8} adds {d:6.2} ps");
        if d > best2.1 {
            best2 = (label, d);
        }
    }
    println!("\nmeasured top-1: {}   measured top-2: {}", best1.0, best2.0);
    if !best2.0.contains(&best1.0[1..3]) {
        println!("=> non-monotonic: the top-2 set drops the top-1 aggressor");
    }

    // --- The engine agrees. ----------------------------------------------
    let engine = TopKAnalysis::new(&circuit, TopKConfig::exact());
    let top1 = engine.addition_set(1)?;
    let top2 = engine.addition_set(2)?;
    println!("\nengine top-1: {}   engine top-2: {}", top1.set(), top2.set());
    Ok(())
}
