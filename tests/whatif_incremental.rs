//! The incremental what-if contract: applying a [`MaskDelta`] to a
//! session is **bit-identical** to a from-scratch run under the session's
//! resulting mask — at any thread count — while recomputing only the
//! dirty fanout cone of the touched couplings.
//!
//! Companion of `parallel_determinism.rs`: the same f64-bit fingerprint
//! discipline, applied to the session cache instead of the thread
//! partition.

use proptest::prelude::*;
use topk_aggressors::netlist::generator::{generate, GeneratorConfig};
use topk_aggressors::netlist::{suite, Circuit, CouplingId};
use topk_aggressors::noise::CouplingMask;
use topk_aggressors::topk::{MaskDelta, Mode, TopKAnalysis, TopKConfig, TopKResult, WhatIfSession};

/// Everything observable about a result except wall-clock time.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    set: Vec<usize>,
    sink: usize,
    delay_before: u64,
    delay_after: u64,
    predicted: u64,
    peak_list_width: usize,
    generated: usize,
}

fn fingerprint(r: &TopKResult) -> Fingerprint {
    Fingerprint {
        set: r.couplings().iter().map(|c| c.index()).collect(),
        sink: r.sink().index(),
        delay_before: r.delay_before().to_bits(),
        delay_after: r.delay_after().to_bits(),
        predicted: r.predicted_delay().to_bits(),
        peak_list_width: r.peak_list_width(),
        generated: r.generated_candidates(),
    }
}

fn config(threads: usize) -> TopKConfig {
    // Validation off: the fingerprint then covers exactly what the sweep
    // computes, and the suite stays fast. The session/from-scratch
    // identity with validation on is covered by the CLI whatif audit.
    TopKConfig { threads, validate: false, ..TopKConfig::default() }
}

/// Starts a session, applies `delta`, and asserts the outcome is
/// bit-identical to a from-scratch run under the session's new mask.
/// Returns (recomputed, total) sweep counters for cone assertions.
fn assert_incremental_identity(
    name: &str,
    circuit: &Circuit,
    mode: Mode,
    k: usize,
    threads: usize,
    start_mask: CouplingMask,
    delta: &MaskDelta,
) -> (usize, usize) {
    let engine = TopKAnalysis::new(circuit, config(threads));
    let mut session = WhatIfSession::start_with_mask(&engine, mode, k, start_mask)
        .expect("session start succeeds");
    let outcome = session.apply(delta).expect("apply succeeds");
    let scratch = engine.run_with_mask(mode, k, session.mask()).expect("from-scratch run succeeds");
    assert_eq!(
        fingerprint(outcome.result()),
        fingerprint(&scratch),
        "{name} {} k={k} threads={threads}: incremental diverged from from-scratch",
        mode.name()
    );
    (outcome.recomputed_victims(), outcome.total_victims())
}

/// The fix-loop shape on one circuit: full run, remove the reported set,
/// re-verify incrementally; then add it back. Both modes, serial and
/// auto-parallel.
fn assert_fix_loop_identity(name: &str, circuit: &Circuit, k: usize) {
    for mode in [Mode::Addition, Mode::Elimination] {
        for threads in [1usize, 0] {
            let engine = TopKAnalysis::new(circuit, config(threads));
            let mut session =
                WhatIfSession::start(&engine, mode, k).expect("session start succeeds");
            let fix: Vec<CouplingId> = session.result().couplings().to_vec();

            for delta in [MaskDelta::remove(&fix), MaskDelta::add(&fix)] {
                let outcome = session.apply(&delta).expect("apply succeeds");
                let scratch = engine
                    .run_with_mask(mode, k, session.mask())
                    .expect("from-scratch run succeeds");
                assert_eq!(
                    fingerprint(outcome.result()),
                    fingerprint(&scratch),
                    "{name} {} k={k} threads={threads} delta={delta:?}: diverged",
                    mode.name()
                );
                // Only the dirty cone may have been re-swept.
                assert!(outcome.recomputed_victims() <= outcome.total_victims());
                if fix.is_empty() {
                    assert_eq!(outcome.recomputed_victims(), 0, "no-op delta must be free");
                }
            }
        }
    }
}

#[test]
fn small_suite_fix_loops_are_identical_to_from_scratch() {
    for name in ["i1", "i2", "i3", "i4"] {
        let circuit = suite::benchmark(name, 42).expect("known benchmark");
        assert_fix_loop_identity(name, &circuit, 3);
    }
}

/// The full scaling suite at the paper's k. Minutes in debug builds, so
/// opt-in: `cargo test --release -- --ignored whatif` (CI_FULL=1 in
/// ci.sh).
#[test]
#[ignore = "slow: full i1-i10 suite; run with --ignored in release builds"]
fn full_suite_fix_loops_are_identical_to_from_scratch() {
    for i in 1..=10 {
        let name = format!("i{i}");
        let circuit = suite::benchmark(&name, 42).expect("known benchmark");
        assert_fix_loop_identity(&name, &circuit, 10);
    }
}

#[test]
fn dirty_cone_is_partial_on_wide_circuits() {
    // i4 is wide enough that one coupling's fanout cone cannot cover the
    // whole net list: the sweep counters must prove a real cache hit.
    let circuit = suite::benchmark("i4", 42).expect("known benchmark");
    let engine = TopKAnalysis::new(&circuit, config(0));
    let mut session =
        WhatIfSession::start(&engine, Mode::Elimination, 1).expect("session start succeeds");
    let fix: Vec<CouplingId> = session.result().couplings().to_vec();
    assert!(!fix.is_empty());
    let outcome = session.apply(&MaskDelta::remove(&fix)).expect("apply succeeds");
    assert!(outcome.recomputed_victims() > 0);
    assert!(
        outcome.recomputed_victims() < outcome.total_victims(),
        "one coupling dirtied all {} nets — dirty closure is not pruning",
        outcome.total_victims()
    );
    assert_eq!(outcome.cached_victims(), outcome.total_victims() - outcome.recomputed_victims());
}

fn tiny_circuit() -> impl Strategy<Value = Circuit> {
    (0u64..200, 6usize..20, 4usize..16).prop_map(|(seed, gates, couplings)| {
        generate(&GeneratorConfig::new(gates, couplings).with_seed(seed))
            .expect("generator succeeds")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random circuits, random deltas in both directions, both modes,
    /// serial and auto-parallel: always the from-scratch answer.
    #[test]
    fn any_mask_delta_matches_from_scratch(
        circuit in tiny_circuit(),
        k in 1usize..4,
        stride in 1usize..4,
        phase in 0usize..3,
    ) {
        // A deterministic pseudo-random coupling subset: every
        // `stride`-th coupling starting at `phase`.
        let subset: Vec<CouplingId> = circuit
            .coupling_ids()
            .filter(|c| c.index() % stride == phase % stride)
            .collect();
        for mode in [Mode::Addition, Mode::Elimination] {
            for threads in [1usize, 0] {
                // Remove direction: start from the full mask.
                let (recomputed, total) = assert_incremental_identity(
                    "generated", &circuit, mode, k, threads,
                    CouplingMask::all(&circuit), &MaskDelta::remove(&subset),
                );
                prop_assert!(recomputed <= total);
                // Add direction: start from the complement.
                let (recomputed, total) = assert_incremental_identity(
                    "generated", &circuit, mode, k, threads,
                    CouplingMask::all(&circuit).without(&subset), &MaskDelta::add(&subset),
                );
                prop_assert!(recomputed <= total);
            }
        }
    }
}
