//! Fault-injection harness: the engine's resilience contract, attacked.
//!
//! Every test injects a specific fault — a panicking enumeration, a NaN
//! delay noise, a bit-flipped or truncated session artifact, a zero
//! budget — and asserts the engine's invariant response: a **typed
//! error**, a **quarantined victim** in the fault report, or a
//! **degraded-but-sound** result. Never a process panic, and never a
//! silently wrong answer.
//!
//! The injection registry in `topk::faultsim` is process-global, so every
//! test that arms it serializes on [`FAULT_LOCK`] and disarms on drop
//! (including on assertion failure) via the [`Armed`] guard.

use std::sync::{Mutex, MutexGuard};

use topk_aggressors::netlist::{suite, Circuit, CouplingId, NetId};
use topk_aggressors::topk::{
    faultsim, FaultPhase, MaskDelta, Mode, Soundness, TopKAnalysis, TopKConfig, TopKError,
    TopKResult, WhatIfSession,
};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Holds the registry lock with all faults disarmed on entry and exit.
struct Armed(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for Armed {
    fn drop(&mut self) {
        faultsim::disarm_all();
    }
}

fn armed() -> Armed {
    // A test that failed an assertion while holding the lock poisons it;
    // the registry state is still safe to reset, so recover the guard.
    let guard = FAULT_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    faultsim::silence_injected_panics();
    faultsim::disarm_all();
    Armed(guard)
}

fn i1() -> Circuit {
    suite::benchmark("i1", 7).expect("known benchmark")
}

/// Everything two runs must agree on to count as bit-identical.
fn fingerprint(r: &TopKResult) -> (Vec<CouplingId>, NetId, u64, u64, u64, usize, usize) {
    (
        r.couplings().to_vec(),
        r.sink(),
        r.delay_before().to_bits(),
        r.delay_after().to_bits(),
        r.predicted_delay().to_bits(),
        r.peak_list_width(),
        r.generated_candidates(),
    )
}

#[test]
fn clean_run_is_exact_with_empty_fault_report() {
    let _guard = armed();
    let circuit = i1();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let result = engine.addition_set(3).expect("clean run succeeds");
    assert!(result.faults().is_empty());
    assert!(!result.is_degraded());
    assert_eq!(result.soundness(), Soundness::Exact);
    let s = result.sweep_stats();
    assert_eq!((s.truncated_victims, s.skipped_victims, s.quarantined_victims), (0, 0, 0));
}

#[test]
fn panicking_victim_is_quarantined_not_fatal() {
    let _guard = armed();
    let circuit = i1();
    let victim = 5;
    assert!(victim < circuit.num_nets());
    faultsim::arm_panic_at_victim(victim);

    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let result = engine.elimination_set(2).expect("the panic must not escape");

    assert_eq!(result.faults().len(), 1, "exactly the armed victim is quarantined");
    let fault = &result.faults().faults()[0];
    assert_eq!(fault.victim().index(), victim);
    assert_eq!(fault.phase(), FaultPhase::Enumeration);
    assert!(fault.cause().contains("dna-faultsim"), "cause carries the payload: {}", fault.cause());
    assert!(result.is_degraded());
    assert_eq!(result.soundness(), Soundness::Degraded { lower_bound: true });
    assert_eq!(result.sweep_stats().quarantined_victims, 1);
    // The answer that survives is still a valid, finite elimination set.
    assert!(result.delay_after().is_finite());
    assert!(result.delay_after() <= result.delay_before() + 1e-9);
}

#[test]
fn dropped_result_slot_degrades_with_a_typed_scheduler_invariant() {
    let _guard = armed();
    let circuit = i1();
    let victim = 5;
    assert!(victim < circuit.num_nets());
    faultsim::arm_drop_sched_publish(victim);

    for threads in [1, 4] {
        let config = TopKConfig { threads, ..TopKConfig::default() };
        let engine = TopKAnalysis::new(&circuit, config);
        // The lost publication must never abort or hang the process:
        // the hole becomes a typed `SchedulerInvariant` quarantining the
        // victim (empty lists, a sound lower bound) and the result
        // degrades — the daemon-safety contract for the sweep.
        let result = engine.elimination_set(2).expect("hole is quarantined, not fatal");
        assert!(result.is_degraded());
        assert_eq!(result.soundness(), Soundness::Degraded { lower_bound: true });
        let fault = result
            .faults()
            .iter()
            .find(|f| f.victim().index() == victim)
            .expect("the unpublished victim is quarantined");
        assert_eq!(fault.phase(), FaultPhase::Enumeration);
        assert!(
            fault.cause().contains("scheduler invariant"),
            "cause names the invariant: {}",
            fault.cause()
        );
        // Everything that survives is still finite and ordered.
        assert!(result.delay_after().is_finite());
        assert!(result.delay_after() <= result.delay_before() + 1e-9);
    }
}

#[test]
fn quarantine_is_bit_identical_across_thread_counts() {
    let _guard = armed();
    let circuit = i1();
    faultsim::arm_panic_at_victim(5);

    let run = |threads: usize| {
        let config = TopKConfig { threads, ..TopKConfig::default() };
        TopKAnalysis::new(&circuit, config).elimination_set(2).expect("quarantined, not fatal")
    };
    let serial = run(1);
    let parallel = run(4);

    assert_eq!(fingerprint(&serial), fingerprint(&parallel));
    assert_eq!(serial.faults().len(), parallel.faults().len());
    for (a, b) in serial.faults().iter().zip(parallel.faults().iter()) {
        assert_eq!((a.victim(), a.phase(), a.cause()), (b.victim(), b.phase(), b.cause()));
    }
}

#[test]
fn nan_delay_noise_becomes_a_typed_quarantine() {
    let _guard = armed();
    let circuit = i1();
    let victim = 9;
    assert!(victim < circuit.num_nets());
    faultsim::arm_nan_at_victim(victim);

    // Elimination seeds every victim with its baseline envelope, so the
    // corrupted delay noise is guaranteed to reach candidate validation.
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let result = engine.elimination_set(2).expect("NaN is caught, not propagated");

    assert_eq!(result.faults().len(), 1);
    let fault = &result.faults().faults()[0];
    assert_eq!(fault.victim().index(), victim);
    assert_eq!(fault.phase(), FaultPhase::Enumeration);
    assert!(fault.cause().contains("delay noise"), "typed cause: {}", fault.cause());
    assert!(result.is_degraded());
    assert!(result.delay_after().is_finite(), "NaN never reaches the reported result");
}

#[test]
fn prepare_panic_is_a_typed_error_not_a_crash() {
    let _guard = armed();
    let circuit = i1();
    faultsim::arm_panic_in_prepare();

    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let err = engine.addition_set(2).expect_err("preparation cannot be isolated per victim");
    match err {
        TopKError::EnginePanic { phase, cause } => {
            assert_eq!(phase, FaultPhase::Prepare);
            assert!(cause.contains("dna-faultsim"), "cause carries the payload: {cause}");
        }
        other => panic!("expected EnginePanic, got: {other}"),
    }
}

#[test]
fn zero_budgets_degrade_soundly_in_both_modes() {
    let _guard = armed();
    let circuit = i1();
    let config = TopKConfig { global_candidate_budget: Some(0), ..TopKConfig::default() };
    let engine = TopKAnalysis::new(&circuit, config);

    // Addition under a zero budget: no candidates can be generated, so
    // the honest answer is the empty set at the base delay — degraded.
    let add = engine.addition_set(2).expect("a starved run is degraded, not an error");
    assert!(add.is_degraded());
    assert!(add.delay_after().is_finite());

    // Elimination keeps its per-victim baseline seed even at allowance
    // zero, so the result is still anchored on the full noisy analysis.
    let del = engine.elimination_set(2).expect("a starved run is degraded, not an error");
    assert!(del.is_degraded());
    assert!(del.delay_before().is_finite());
    assert!(del.delay_after() <= del.delay_before() + 1e-9);
}

#[test]
fn artifact_round_trip_preserves_results_and_faults() {
    let _guard = armed();
    let circuit = i1();
    faultsim::arm_panic_at_victim(5);

    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let session = WhatIfSession::start(&engine, Mode::Elimination, 2).expect("session starts");
    assert_eq!(session.result().faults().len(), 1, "the session carries a quarantine");
    faultsim::disarm_all();

    let artifact = session.save_artifact();
    let resumed = WhatIfSession::resume(&engine, &artifact).expect("clean artifact loads");
    assert_eq!(fingerprint(session.result()), fingerprint(resumed.result()));
    assert_eq!(session.result().faults().len(), resumed.result().faults().len());
    for (a, b) in session.result().faults().iter().zip(resumed.result().faults().iter()) {
        assert_eq!((a.victim(), a.phase(), a.cause()), (b.victim(), b.phase(), b.cause()));
    }
}

#[test]
fn loaded_session_applies_bit_identically_to_a_live_one() {
    let _guard = armed();
    let circuit = i1();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());

    let mut live = WhatIfSession::start(&engine, Mode::Elimination, 2).expect("session starts");
    let artifact = live.save_artifact();
    let mut loaded = WhatIfSession::resume(&engine, &artifact).expect("clean artifact loads");

    let fix: Vec<CouplingId> = live.result().couplings().to_vec();
    let delta = MaskDelta::remove(&fix);
    let from_live = live.apply(&delta).expect("live apply");
    let from_loaded = loaded.apply(&delta).expect("loaded apply");
    assert_eq!(fingerprint(from_live.result()), fingerprint(from_loaded.result()));
}

#[test]
fn every_single_bit_flip_is_detected() {
    let _guard = armed();
    let circuit = i1();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let session = WhatIfSession::start(&engine, Mode::Addition, 2).expect("session starts");
    let artifact = session.save_artifact();

    // The whole header, then a stride through the payload: every flip
    // must surface as a typed artifact error — magic, version, length,
    // checksum, or semantic validation — and never a panic or an Ok.
    let offsets = (0..24.min(artifact.len())).chain((24..artifact.len()).step_by(97));
    for offset in offsets {
        let mut corrupt = artifact.clone();
        corrupt[offset] ^= 0x20;
        let err = WhatIfSession::resume(&engine, &corrupt)
            .err()
            .unwrap_or_else(|| panic!("flip at byte {offset} went undetected"));
        assert!(matches!(err, TopKError::Artifact(_)), "byte {offset}: {err}");
    }
}

#[test]
fn truncated_artifacts_are_detected_at_every_length_class() {
    let _guard = armed();
    let circuit = i1();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let session = WhatIfSession::start(&engine, Mode::Addition, 2).expect("session starts");
    let artifact = session.save_artifact();

    for len in [0, 1, 7, 8, 12, 20, 23, 24, artifact.len() / 2, artifact.len() - 1] {
        let err = WhatIfSession::resume(&engine, &artifact[..len])
            .err()
            .unwrap_or_else(|| panic!("truncation to {len} bytes went undetected"));
        assert!(matches!(err, TopKError::Artifact(_)), "len {len}: {err}");
    }
    assert!(WhatIfSession::resume(&engine, &artifact).is_ok(), "untouched artifact still loads");
}

#[test]
fn artifact_for_a_different_circuit_or_config_is_rejected() {
    let _guard = armed();
    let circuit = i1();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let session = WhatIfSession::start(&engine, Mode::Addition, 2).expect("session starts");
    let artifact = session.save_artifact();

    // Same schema, different world: a re-seeded circuit of the same size
    // family and a differently configured engine must both refuse.
    let other_circuit = suite::benchmark("i1", 8).expect("known benchmark");
    let other_engine = TopKAnalysis::new(&other_circuit, TopKConfig::default());
    let err = WhatIfSession::resume(&other_engine, &artifact).expect_err("different circuit");
    assert!(err.to_string().contains("different circuit"), "{err}");

    let strict = TopKConfig { validate: false, ..TopKConfig::default() };
    let strict_engine = TopKAnalysis::new(&circuit, strict);
    let err = WhatIfSession::resume(&strict_engine, &artifact).expect_err("different config");
    assert!(err.to_string().contains("different engine configuration"), "{err}");

    // The thread count is explicitly exempt: it never changes results.
    let threaded = TopKConfig { threads: 4, ..TopKConfig::default() };
    let threaded_engine = TopKAnalysis::new(&circuit, threaded);
    assert!(WhatIfSession::resume(&threaded_engine, &artifact).is_ok());
}

#[test]
fn forced_clean_certificate_fails_the_audit_spot_check() {
    let _guard = armed();
    let circuit = i1();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());

    // Honest run first: its certificates must pass the spot check.
    let mut honest = WhatIfSession::start(&engine, Mode::Elimination, 3).expect("session starts");
    let fix: Vec<CouplingId> = honest.result().couplings().to_vec();
    let outcome = honest.apply(&MaskDelta::remove(&fix)).expect("apply succeeds");
    honest.audit_clean_victims(&outcome, 8).expect("honest certificates pass the spot check");

    // A structurally dirty victim whose cached answer happens to match
    // the new world would slip past the per-victim comparison, so aim
    // the hook at victims whose data certainly changed: the endpoints of
    // the removed couplings (their candidate lists lose the coupling).
    // At least one of them must make the forged audit fail typed.
    let mut caught = false;
    for &cc in &fix {
        let coupling = circuit.coupling(cc);
        for victim in [coupling.a().index(), coupling.b().index()] {
            if !outcome.dirty_flags()[victim] {
                continue;
            }
            faultsim::arm_force_clean_victim(victim);
            let mut forged =
                WhatIfSession::start(&engine, Mode::Elimination, 3).expect("session starts");
            let forged_out = forged.apply(&MaskDelta::remove(&fix)).expect("apply succeeds");
            faultsim::disarm_all();
            assert!(
                !forged_out.dirty_flags()[victim],
                "the armed hook must force victim {victim} out of the dirty set"
            );
            assert!(
                forged_out.certificates().iter().any(|c| c.victim().index() == victim),
                "the forced skip must carry a (fabricated) certificate"
            );
            match forged.audit_clean_victims(&forged_out, usize::MAX) {
                Err(TopKError::Internal { .. }) => caught = true,
                Err(other) => panic!("expected a typed internal error, got {other:?}"),
                Ok(_) => {}
            }
        }
    }
    assert!(caught, "the audit must reject at least one fabricated certificate");
}

#[test]
fn forced_clean_certificate_fails_lint_rederivation() {
    use topk_aggressors::lint::lint_dirty_closure_certified;

    let _guard = armed();
    let circuit = i1();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let mut session = WhatIfSession::start(&engine, Mode::Elimination, 3).expect("session starts");
    let fix: Vec<CouplingId> = session.result().couplings().to_vec();
    let probe = session.fork().apply(&MaskDelta::remove(&fix)).expect("probe apply succeeds");
    let victim = probe.dirty_flags().iter().position(|&d| d).expect("the fix dirties some victim");

    faultsim::arm_force_clean_victim(victim);
    let before = session.mask().clone();
    let outcome = session.apply(&MaskDelta::remove(&fix)).expect("apply succeeds");
    faultsim::disarm_all();

    // The independent re-derivation runs with the hook disarmed, so the
    // fabricated certificate contradicts the witness: L050 (and a stale
    // corridor counterpart, L051) must fire.
    let witness = engine
        .derive_clean_witness(Mode::Elimination, &before, session.mask())
        .expect("witness derivation succeeds");
    let diags = lint_dirty_closure_certified(
        &circuit,
        &before,
        session.mask(),
        outcome.dirty_flags(),
        outcome.certificates(),
        &witness,
    );
    assert!(diags.has_errors(), "the fabricated certificate must be caught");
    let text = diags.render_text();
    assert!(text.contains("L050"), "expected L050 in:\n{text}");
}

#[test]
fn whatif_apply_recovers_after_a_quarantined_start() {
    let _guard = armed();
    let circuit = i1();
    faultsim::arm_panic_at_victim(5);

    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let mut session = WhatIfSession::start(&engine, Mode::Elimination, 2).expect("session starts");
    assert_eq!(session.result().faults().len(), 1);
    faultsim::disarm_all();

    // With the fault gone, applying a delta re-sweeps the dirty cone
    // healthy; the engine never panics and the outcome stays finite.
    let fix: Vec<CouplingId> = session.result().couplings().to_vec();
    let outcome = session.apply(&MaskDelta::remove(&fix)).expect("apply succeeds");
    assert!(outcome.result().delay_after().is_finite());
}

#[test]
fn strided_bit_flips_over_delta_records_are_typed_and_lenient_recoverable() {
    use topk_aggressors::topk::{chain_summary, commit_chain, CommitOptions, SaveKind};

    let _guard = armed();
    let circuit = i1();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let mut session = WhatIfSession::start(&engine, Mode::Elimination, 2).expect("session starts");

    // Grow a chain with two delta records behind the base checkpoint.
    let dir = std::env::temp_dir().join("dna_fault_chain");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("flips-{}.dnawifa", std::process::id()));
    commit_chain(&mut session, &path, &CommitOptions::default()).expect("base commit");
    for id in 0..2u32 {
        session.apply(&MaskDelta::remove(&[CouplingId::new(id)])).expect("apply");
        let report = commit_chain(&mut session, &path, &CommitOptions::default()).expect("commit");
        assert_eq!(report.kind, SaveKind::Delta(1));
    }
    let bytes = std::fs::read(&path).expect("chain bytes");
    let _ = std::fs::remove_file(&path);
    let summary = chain_summary(&bytes).expect("summary");
    assert_eq!(summary.records.len(), 3, "checkpoint + two deltas");
    let delta_start = summary.records[1].offset as usize;

    // A stride of flips across the delta region — record headers, link
    // hashes, payloads, CRCs. Every flip must (a) fail the strict loader
    // with a typed artifact error, and (b) leave the lenient loader a
    // committed prefix that replays bit-identically to the clean chain
    // at that same generation: corruption costs the tail, never the
    // answer and never a panic.
    let tip = summary.tip_generation().expect("tip");
    for offset in (delta_start..bytes.len()).step_by(61) {
        let mut corrupt = bytes.clone();
        corrupt[offset] ^= 0x10;

        let err = WhatIfSession::resume(&engine, &corrupt)
            .err()
            .unwrap_or_else(|| panic!("flip at byte {offset} went undetected"));
        assert!(matches!(err, TopKError::Artifact(_)), "byte {offset}: {err}");

        let (salvaged, recovery) = WhatIfSession::resume_lenient(&engine, &corrupt)
            .unwrap_or_else(|e| panic!("flip at byte {offset}: base must survive: {e}"));
        assert!(recovery.generation < tip, "byte {offset}: the damaged tail cannot commit");
        assert_eq!(salvaged.generation(), recovery.generation);
        let reference = WhatIfSession::resume_at(&engine, &bytes, recovery.generation)
            .expect("clean chain replays every committed generation");
        assert_eq!(
            salvaged.result().identity_fingerprint(),
            reference.result().identity_fingerprint(),
            "byte {offset}: salvaged prefix diverged from the clean replay"
        );
    }
}
