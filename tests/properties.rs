//! Cross-crate property tests on randomly generated circuits.

use proptest::prelude::*;
use topk_aggressors::netlist::generator::{generate, GeneratorConfig};
use topk_aggressors::netlist::{format, CouplingId};
use topk_aggressors::noise::{CouplingMask, NoiseAnalysis, NoiseConfig};
use topk_aggressors::sta::{LinearDelayModel, StaConfig, TimingReport};
use topk_aggressors::topk::{Corridor, TopKAnalysis, TopKConfig};
use topk_aggressors::waveform::{Envelope, NoisePulse, TimeInterval};

fn tiny_circuit() -> impl Strategy<Value = topk_aggressors::netlist::Circuit> {
    (0u64..200, 6usize..20, 4usize..16).prop_map(|(seed, gates, couplings)| {
        generate(&GeneratorConfig::new(gates, couplings).with_seed(seed))
            .expect("generator succeeds")
    })
}

/// A random noise envelope: a three-corner pulse smeared over a random
/// arrival window — the exact curve shape the corridor prover bounds.
fn envelope() -> impl Strategy<Value = Envelope> {
    (-5.0f64..5.0, 0.1f64..10.0, 0.1f64..10.0, 0.0f64..0.8, 0.0f64..100.0, 0.0f64..50.0).prop_map(
        |(start, rise, fall, peak, eat, width)| {
            let pulse = NoisePulse::new(start, start + rise, peak, start + rise + fall);
            Envelope::from_window(&pulse, eat, eat + width)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Enabling more couplings never speeds the circuit up.
    #[test]
    fn coupling_monotonicity(circuit in tiny_circuit(), split in 0.0f64..1.0) {
        let engine = NoiseAnalysis::new(&circuit, NoiseConfig::default());
        let cut = (circuit.num_couplings() as f64 * split) as u32;
        let subset: Vec<CouplingId> = (0..cut).map(CouplingId::new).collect();
        let small = engine
            .run_with_mask(&CouplingMask::none(&circuit).with(&subset))
            .unwrap()
            .circuit_delay();
        let full = engine.run().unwrap().circuit_delay();
        prop_assert!(full + 1e-9 >= small,
            "full set {full} faster than subset {small}");
    }

    /// Noise analysis converges and never reports negative noise.
    #[test]
    fn noise_analysis_well_formed(circuit in tiny_circuit()) {
        let report = NoiseAnalysis::new(&circuit, NoiseConfig::default()).run().unwrap();
        prop_assert!(report.converged());
        prop_assert!(report.noise().iter().all(|&n| n >= 0.0 && n.is_finite()));
        prop_assert!(report.circuit_delay() >= report.noiseless_delay() - 1e-9);
    }

    /// Windows always contain their noiseless counterpart: EAT unchanged,
    /// LAT only grows.
    #[test]
    fn windows_only_widen(circuit in tiny_circuit()) {
        let clean = TimingReport::run(
            &circuit, &LinearDelayModel::new(), &StaConfig::default()).unwrap();
        let noisy = NoiseAnalysis::new(&circuit, NoiseConfig::default()).run().unwrap();
        for net in circuit.net_ids() {
            let c = clean.timing(net);
            let n = noisy.noisy_timing().timing(net);
            prop_assert!((n.eat() - c.eat()).abs() < 1e-9);
            prop_assert!(n.lat() + 1e-9 >= c.lat());
        }
    }

    /// Top-k results are internally consistent: the reported delays can be
    /// reproduced with the reported coupling set.
    #[test]
    fn topk_results_reproducible(circuit in tiny_circuit(), k in 1usize..4) {
        let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
        let noise = NoiseAnalysis::new(&circuit, NoiseConfig::default());

        let add = engine.addition_set(k).unwrap();
        let m = CouplingMask::none(&circuit).with(add.couplings());
        let measured = noise.run_with_mask(&m).unwrap().circuit_delay();
        prop_assert!((measured - add.delay_after()).abs() < 1e-9);
        prop_assert!(add.delay_after() + 1e-9 >= add.delay_before());

        let del = engine.elimination_set(k).unwrap();
        let m = CouplingMask::all(&circuit).without(del.couplings());
        let measured = noise.run_with_mask(&m).unwrap().circuit_delay();
        prop_assert!((measured - del.delay_after()).abs() < 1e-9);
        prop_assert!(del.delay_after() <= del.delay_before() + 1e-9);
    }

    /// The text format round-trips every generated circuit.
    #[test]
    fn format_round_trip(circuit in tiny_circuit()) {
        let text = format::write(&circuit);
        let back = format::parse(&text).unwrap();
        prop_assert_eq!(back.num_gates(), circuit.num_gates());
        prop_assert_eq!(back.num_nets(), circuit.num_nets());
        prop_assert_eq!(back.num_couplings(), circuit.num_couplings());
        // Same noiseless timing after the round trip.
        let a = TimingReport::run(
            &circuit, &LinearDelayModel::new(), &StaConfig::default()).unwrap();
        let b = TimingReport::run(
            &back, &LinearDelayModel::new(), &StaConfig::default()).unwrap();
        prop_assert!((a.circuit_delay() - b.circuit_delay()).abs() < 1e-9);
    }

    /// The corridor abstract domain is sound on random curves:
    /// `lower <= exact <= upper` pointwise for the exact embedding, the
    /// box abstraction, and every transfer function the prover composes
    /// (add, sub_clamped, widen, clip).
    #[test]
    fn corridor_bounds_contain_exact_curves(a in envelope(), b in envelope(), delta in 0.0f64..40.0, clip_lo in -20.0f64..120.0, clip_w in 1.0f64..80.0) {
        let iv = {
            let h = a.span().hull(b.span());
            TimeInterval::new(h.lo() - 60.0, h.hi() + 60.0)
        };
        prop_assert!(Corridor::from_exact(a.as_pwl()).contains(a.as_pwl(), iv));
        prop_assert!(Corridor::box_bound(a.peak(), a.span()).contains(a.as_pwl(), iv));

        let exact_sum = a.as_pwl().add_simplified(b.as_pwl(), 0.0);
        let sum = Corridor::box_bound(a.peak(), a.span()).add(&Corridor::from_exact(b.as_pwl()));
        prop_assert!(sum.contains(&exact_sum, iv), "lower <= exact sum <= upper must hold");

        let exact_diff = a.as_pwl().sub_clamped_simplified(b.as_pwl(), 0.0);
        let diff = Corridor::box_bound(a.peak(), a.span())
            .sub_clamped(&Corridor::box_bound(b.peak(), b.span()));
        prop_assert!(diff.contains(&exact_diff, iv), "corridor difference must contain exact");

        let widened = Corridor::from_exact(a.as_pwl()).widen(delta);
        prop_assert!(widened.contains(a.as_pwl(), iv), "widening must keep the original curve");

        let clip = TimeInterval::new(clip_lo, clip_lo + clip_w);
        let clipped_exact = a.clipped(clip);
        let clipped = Corridor::from_exact(a.as_pwl()).clip(clip);
        prop_assert!(clipped.contains(clipped_exact.as_pwl(), iv));
        if clipped.is_provably_zero() {
            prop_assert!(clipped_exact.is_zero(), "corridor refuted a non-zero envelope");
        }
    }
}
