//! Soak tests for the multi-tenant what-if daemon core.
//!
//! The daemon's contract is that concurrency is invisible: every
//! scenario response must be bit-identical (by identity fingerprint) to
//! a sequential single-session replay of the same delta, no matter how
//! requests interleave across tenants, how often the LRU spills and
//! reloads sessions, or whether another tenant is poisoned. These tests
//! drive an in-process [`SessionManager`] from several client threads
//! and then replay every recorded request against fresh solo sessions.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use topk_aggressors::netlist::generator::{generate, GeneratorConfig};
use topk_aggressors::netlist::{suite, Circuit, CouplingId};
use topk_aggressors::topk::serve::{Response, ServeConfig, SessionManager};
use topk_aggressors::topk::{faultsim, MaskDelta, Mode, TopKAnalysis, TopKConfig, WhatIfSession};

/// The faultsim registry is process-global, and every test here drives
/// engine sweeps; serialize the whole file so an armed injection can
/// never leak into a neighbouring test's circuits.
static FAULTSIM: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    FAULTSIM.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn small_circuit(seed: u64) -> Circuit {
    generate(&GeneratorConfig::new(24, 18).with_seed(seed)).expect("generator succeeds")
}

fn mid_circuit(seed: u64) -> Circuit {
    generate(&GeneratorConfig::new(40, 30).with_seed(seed)).expect("generator succeeds")
}

/// One recorded daemon interaction: which tenant, which delta, and the
/// fingerprint the daemon answered with.
struct Recorded {
    tenant: &'static str,
    delta: MaskDelta,
    fingerprint: u64,
    degraded: bool,
}

fn single_delta(circuit: &Circuit, i: usize) -> MaskDelta {
    let n = circuit.num_couplings() as u32;
    MaskDelta::remove(&[CouplingId::new(i as u32 % n)])
}

fn pair_delta(circuit: &Circuit, i: usize) -> MaskDelta {
    let n = circuit.num_couplings() as u32;
    MaskDelta::remove(&[CouplingId::new(i as u32 % n), CouplingId::new((i as u32 * 7 + 3) % n)])
}

/// Replays every recorded request sequentially against a fresh solo
/// session per tenant and bit-compares the fingerprints.
fn replay_and_compare(
    recorded: &[Recorded],
    tenants: &[(&'static str, &Circuit, TopKConfig)],
    k: usize,
) {
    for &(name, circuit, config) in tenants {
        let analysis = TopKAnalysis::new(circuit, config);
        let session =
            WhatIfSession::start(&analysis, Mode::Elimination, k).expect("solo session starts");
        for r in recorded.iter().filter(|r| r.tenant == name) {
            let mut fork = session.fork();
            let outcome = fork.apply(&r.delta).expect("solo apply succeeds");
            assert_eq!(
                r.fingerprint,
                outcome.result().identity_fingerprint(),
                "tenant `{name}` delta {:?}: daemon fingerprint differs from the \
                 sequential solo replay",
                r.delta
            );
            assert_eq!(
                r.degraded,
                outcome.result().is_degraded(),
                "tenant `{name}`: degraded marker differs from the solo replay"
            );
        }
    }
}

/// Drives `threads × per_thread` interleaved requests (mixed singles and
/// batches, one budget-starved tenant) through one manager and verifies
/// every response against the sequential replay.
fn soak(manager: &Arc<SessionManager>, threads: usize, per_thread: usize, k: usize) {
    let a = small_circuit(9);
    let b = mid_circuit(31);
    let starved_config = TopKConfig { global_candidate_budget: Some(0), ..TopKConfig::default() };
    for (name, circuit, config) in [
        ("alpha", &a, TopKConfig::default()),
        ("beta", &b, TopKConfig::default()),
        ("starved", &a, starved_config),
    ] {
        let r = manager.open(name, circuit.clone(), Mode::Elimination, k, config);
        assert!(matches!(r, Response::Opened { .. }), "open {name}: {r:?}");
    }

    let recorded: Arc<Mutex<Vec<Recorded>>> = Arc::new(Mutex::new(Vec::new()));
    let errors = Arc::new(AtomicUsize::new(0));
    let mut workers = Vec::new();
    for t in 0..threads {
        let manager = manager.clone();
        let recorded = recorded.clone();
        let errors = errors.clone();
        let (a, b) = (a.clone(), b.clone());
        workers.push(std::thread::spawn(move || {
            for i in 0..per_thread {
                let step = t * per_thread + i;
                let (tenant, circuit) = match step % 3 {
                    0 => ("alpha", &a),
                    1 => ("beta", &b),
                    _ => ("starved", &a),
                };
                if step % 4 == 3 {
                    // A two-scenario batch request.
                    let deltas = vec![single_delta(circuit, step), pair_delta(circuit, step)];
                    match manager.batch(tenant, deltas.clone()) {
                        Response::Batch { summaries, coalesced, .. } => {
                            assert!(coalesced >= 1);
                            assert_eq!(summaries.len(), 2);
                            let mut rec = recorded.lock().unwrap();
                            for (delta, s) in deltas.into_iter().zip(summaries) {
                                rec.push(Recorded {
                                    tenant,
                                    delta,
                                    fingerprint: s.fingerprint,
                                    degraded: s.degraded,
                                });
                            }
                        }
                        other => {
                            eprintln!("batch on {tenant} failed: {other:?}");
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                } else {
                    let delta = single_delta(circuit, step);
                    match manager.scenario(tenant, delta.clone()) {
                        Response::Scenario { summary, coalesced, .. } => {
                            assert!(coalesced >= 1);
                            recorded.lock().unwrap().push(Recorded {
                                tenant,
                                delta,
                                fingerprint: summary.fingerprint,
                                degraded: summary.degraded,
                            });
                        }
                        other => {
                            eprintln!("scenario on {tenant} failed: {other:?}");
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        }));
    }
    for w in workers {
        w.join().expect("soak worker never panics");
    }
    assert_eq!(errors.load(Ordering::Relaxed), 0, "every request must be answered");

    let recorded = recorded.lock().unwrap();
    assert_eq!(
        recorded.len(),
        threads * per_thread + threads * per_thread / 4,
        "every request (and both halves of each batch) is recorded"
    );
    // The starved tenant's zero global budget must degrade every answer.
    assert!(
        recorded.iter().filter(|r| r.tenant == "starved").all(|r| r.degraded),
        "a zero global budget degrades every response"
    );
    let starved_config = TopKConfig { global_candidate_budget: Some(0), ..TopKConfig::default() };
    replay_and_compare(
        &recorded,
        &[
            ("alpha", &a, TopKConfig::default()),
            ("beta", &b, TopKConfig::default()),
            ("starved", &a, starved_config),
        ],
        k,
    );
}

#[test]
fn interleaved_tenants_bit_match_sequential_replay() {
    let _g = serial();
    let manager = Arc::new(SessionManager::new(ServeConfig::default()));
    soak(&manager, 3, 8, 2);
    let Response::Stats(stats) = manager.stats() else { panic!("stats") };
    assert_eq!(stats.tenants, 3);
    assert_eq!(stats.quarantined, 0);
}

/// The CI_FULL variant: hundreds of interleaved requests over a
/// capacity-1 LRU, so almost every request crosses a spill/reload.
#[test]
#[ignore = "heavyweight soak; run with --ignored (CI_FULL)"]
fn soak_hundreds_of_requests_across_a_thrashing_lru() {
    let _g = serial();
    let manager =
        Arc::new(SessionManager::new(ServeConfig { capacity: 1, ..ServeConfig::default() }));
    soak(&manager, 6, 34, 2);
    let Response::Stats(stats) = manager.stats() else { panic!("stats") };
    assert_eq!(stats.quarantined, 0);
    assert!(stats.spills > 0, "a capacity-1 LRU under 3 tenants must spill");
    assert!(stats.reloads > 0, "spilled tenants must come back hot");
    assert_eq!(stats.reload_fallbacks, 0, "clean artifacts resume without fallback");
}

/// LRU eviction and reload must be invisible to the answers: the same
/// request before an eviction, after a reload, and on a zero-capacity
/// manager (spill after every request) produces one fingerprint.
#[test]
fn evict_reload_and_zero_capacity_preserve_identity() {
    let _g = serial();
    let circuit = small_circuit(9);
    let delta = MaskDelta::remove(&[CouplingId::new(2)]);

    let manager =
        Arc::new(SessionManager::new(ServeConfig { capacity: 1, ..ServeConfig::default() }));
    assert!(matches!(
        manager.open("a", circuit.clone(), Mode::Elimination, 2, TopKConfig::default()),
        Response::Opened { .. }
    ));
    let Response::Scenario { summary: hot, .. } = manager.scenario("a", delta.clone()) else {
        panic!("scenario")
    };
    // Opening a second tenant over capacity 1 evicts `a`.
    assert!(matches!(
        manager.open("b", mid_circuit(31), Mode::Elimination, 2, TopKConfig::default()),
        Response::Opened { .. }
    ));
    let Response::Stats(stats) = manager.stats() else { panic!("stats") };
    assert!(stats.spills >= 1, "capacity 1 with two tenants spills");
    let Response::Scenario { summary: reloaded, note, .. } = manager.scenario("a", delta.clone())
    else {
        panic!("scenario")
    };
    assert_eq!(note, None, "a clean artifact reloads without a fallback note");
    assert_eq!(hot.fingerprint, reloaded.fingerprint, "reload is bit-invisible");

    // Zero capacity: every request pays a spill + reload, answers are
    // still identical.
    let zero = SessionManager::new(ServeConfig { capacity: 0, ..ServeConfig::default() });
    assert!(matches!(
        zero.open("a", circuit, Mode::Elimination, 2, TopKConfig::default()),
        Response::Opened { .. }
    ));
    for _ in 0..3 {
        let Response::Scenario { summary, .. } = zero.scenario("a", delta.clone()) else {
            panic!("scenario")
        };
        assert_eq!(summary.fingerprint, hot.fingerprint);
    }
    let Response::Stats(stats) = zero.stats() else { panic!("stats") };
    assert_eq!(stats.hot, 0, "zero capacity never keeps a tenant hot");
}

/// A poisoned tenant (a victim's enumeration panics under faultsim) is
/// quarantined per victim: its responses are `Degraded` — while a clean
/// tenant keeps getting bit-exact answers from the same daemon.
#[test]
fn poisoned_tenant_degrades_while_clean_tenant_serves() {
    let _g = serial();
    faultsim::silence_injected_panics();
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            faultsim::disarm_all();
        }
    }
    let _d = Disarm;

    let clean = small_circuit(9);
    let big = suite::benchmark("i1", 7).expect("suite circuit");
    // Arm a panic at a victim index that exists only in the big circuit,
    // so the injection can never leak into the clean tenant.
    let poison_victim = clean.num_nets();
    assert!(poison_victim < big.num_nets(), "victim must exist in the big circuit");

    let manager = SessionManager::new(ServeConfig::default());
    assert!(matches!(
        manager.open("clean", clean.clone(), Mode::Elimination, 2, TopKConfig::default()),
        Response::Opened { .. }
    ));

    faultsim::arm_panic_at_victim(poison_victim);
    // The poisoned tenant's base sweep quarantines the victim instead of
    // aborting: open succeeds, the daemon lives. The fault stays armed
    // for the whole test — its index cannot exist in the clean circuit,
    // so the clean tenant (and its solo replay) never see it.
    assert!(matches!(
        manager.open("poisoned", big.clone(), Mode::Elimination, 2, TopKConfig::default()),
        Response::Opened { .. }
    ));

    // Its scenario responses are Degraded (the quarantine is inherited
    // by every incremental step), with the armed victim named.
    let delta = single_delta(&big, 1);
    let Response::Scenario { summary, .. } = manager.scenario("poisoned", delta) else {
        panic!("scenario")
    };
    assert!(summary.degraded, "poisoned tenant must answer Degraded");
    assert!(summary.faults >= 1);
    let cause = summary.first_fault.expect("fault cause is carried");
    assert!(cause.contains("dna-faultsim"), "cause names the injection: {cause}");

    // The clean tenant, meanwhile, still bit-matches a solo replay.
    let delta = single_delta(&clean, 4);
    let Response::Scenario { summary, .. } = manager.scenario("clean", delta.clone()) else {
        panic!("scenario")
    };
    assert!(!summary.degraded);
    let analysis = TopKAnalysis::new(&clean, TopKConfig::default());
    let solo = WhatIfSession::start(&analysis, Mode::Elimination, 2).unwrap();
    let mut fork = solo.fork();
    let outcome = fork.apply(&delta).unwrap();
    assert_eq!(summary.fingerprint, outcome.result().identity_fingerprint());

    let Response::Stats(stats) = manager.stats() else { panic!("stats") };
    assert_eq!(stats.quarantined, 0, "per-victim quarantine never kills the worker");
}
