//! End-to-end integration: generated benchmark circuits through the full
//! pipeline — STA, iterative noise analysis, top-k addition and
//! elimination — checking the cross-crate invariants the paper's
//! evaluation relies on.

use topk_aggressors::netlist::{suite, Circuit};
use topk_aggressors::noise::{CouplingMask, NoiseAnalysis, NoiseConfig};
use topk_aggressors::sta::{critical_path, LinearDelayModel, StaConfig, TimingReport};
use topk_aggressors::topk::{TopKAnalysis, TopKConfig};

fn i1() -> Circuit {
    suite::benchmark("i1", 7).expect("known benchmark")
}

#[test]
fn noise_brackets_hold_on_benchmark() {
    let circuit = i1();
    let noise = NoiseAnalysis::new(&circuit, NoiseConfig::default());
    let noisy = noise.run().expect("analysis succeeds");
    let quiet = noise.run_with_mask(&CouplingMask::none(&circuit)).expect("analysis succeeds");
    assert!(noisy.converged());
    assert!(
        noisy.circuit_delay() > quiet.circuit_delay(),
        "232 couplings must produce measurable delay noise"
    );
    // The noiseless run agrees with plain STA.
    let sta = TimingReport::run(&circuit, &LinearDelayModel::new(), &StaConfig::default())
        .expect("sta succeeds");
    assert!((quiet.circuit_delay() - sta.circuit_delay()).abs() < 1e-9);
}

#[test]
fn addition_delays_rise_with_k_between_bounds() {
    let circuit = i1();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let noise = NoiseAnalysis::new(&circuit, NoiseConfig::default());
    let all_agg = noise.run().expect("analysis succeeds").circuit_delay();
    let no_agg = noise
        .run_with_mask(&CouplingMask::none(&circuit))
        .expect("analysis succeeds")
        .circuit_delay();

    let mut prev = no_agg;
    for k in [1usize, 3, 6, 10] {
        let r = engine.addition_set(k).expect("analysis succeeds");
        assert_eq!(r.couplings().len(), k);
        assert!(
            r.delay_after() >= no_agg - 1e-9 && r.delay_after() <= all_agg + 1e-9,
            "k={k}: delay {} outside [{no_agg}, {all_agg}]",
            r.delay_after()
        );
        // Monotone within measurement tolerance: a larger budget can
        // always include the smaller set.
        assert!(
            r.delay_after() >= prev - 1.0,
            "k={k}: delay {} fell below previous {prev}",
            r.delay_after()
        );
        prev = r.delay_after();
    }
}

#[test]
fn elimination_delays_fall_with_k_between_bounds() {
    let circuit = i1();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let noise = NoiseAnalysis::new(&circuit, NoiseConfig::default());
    let all_agg = noise.run().expect("analysis succeeds").circuit_delay();
    let no_agg = noise
        .run_with_mask(&CouplingMask::none(&circuit))
        .expect("analysis succeeds")
        .circuit_delay();

    let mut prev = all_agg;
    for k in [1usize, 3, 6, 10] {
        let r = engine.elimination_set(k).expect("analysis succeeds");
        assert!(r.couplings().len() <= k);
        assert!(
            r.delay_after() >= no_agg - 1e-9 && r.delay_after() <= all_agg + 1e-9,
            "k={k}: delay {} outside [{no_agg}, {all_agg}]",
            r.delay_after()
        );
        assert!(
            r.delay_after() <= prev + 1.0,
            "k={k}: delay {} rose above previous {prev}",
            r.delay_after()
        );
        prev = r.delay_after();
    }
}

#[test]
fn chosen_sets_are_verifiable_by_independent_analysis() {
    // The TopKResult's delay_after must be reproducible by running the
    // noise analysis directly with the corresponding mask.
    let circuit = i1();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    let noise = NoiseAnalysis::new(&circuit, NoiseConfig::default());

    let add = engine.addition_set(4).expect("analysis succeeds");
    let mask = CouplingMask::none(&circuit).with(add.couplings());
    let measured = noise.run_with_mask(&mask).expect("analysis succeeds").circuit_delay();
    assert!((measured - add.delay_after()).abs() < 1e-9);

    let del = engine.elimination_set(4).expect("analysis succeeds");
    let mask = CouplingMask::all(&circuit).without(del.couplings());
    let measured = noise.run_with_mask(&mask).expect("analysis succeeds").circuit_delay();
    assert!((measured - del.delay_after()).abs() < 1e-9);
}

#[test]
fn peeled_elimination_never_worse_than_one_pass_here() {
    let circuit = i1();
    let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
    for k in [2usize, 5] {
        let one = engine.elimination_set(k).expect("analysis succeeds");
        let peeled = engine.elimination_set_peeled(k, 1).expect("analysis succeeds");
        assert!(
            peeled.delay_after() <= one.delay_after() + 1.0,
            "k={k}: peeled {} worse than one-pass {}",
            peeled.delay_after(),
            one.delay_after()
        );
    }
}

#[test]
fn noisy_critical_path_exists_and_ends_at_critical_output() {
    let circuit = i1();
    let noise = NoiseAnalysis::new(&circuit, NoiseConfig::default());
    let report = noise.run().expect("analysis succeeds");
    let path = critical_path(&circuit, report.noisy_timing());
    assert_eq!(path.arrival(), report.circuit_delay());
    assert!(circuit.net(path.endpoint()).is_output());
    assert!(circuit.net(path.nets()[0]).is_input());
}

#[test]
fn different_seeds_give_different_but_valid_circuits() {
    let a = suite::benchmark("i1", 1).expect("known benchmark");
    let b = suite::benchmark("i1", 2).expect("known benchmark");
    assert_ne!(a, b);
    for c in [&a, &b] {
        assert_eq!(c.num_gates(), 59);
        assert_eq!(c.num_couplings(), 232);
        let noisy = NoiseAnalysis::new(c, NoiseConfig::default()).run().expect("analysis succeeds");
        assert!(noisy.circuit_delay() > 0.0);
    }
}
