//! The batch what-if contract: evaluating N scenarios through
//! [`WhatIfSession::apply_batch`] is **bit-identical** to N sequential
//! `fork().apply(delta)` calls — at any thread count, in any submission
//! order — while sharing closure and sweep work across scenarios. Plus
//! the peeled-elimination identity: the incremental peel loop equals the
//! from-scratch reference implementation.
//!
//! Companion of `whatif_incremental.rs`: the same f64-bit fingerprint
//! discipline, applied to the batch engine and the peel loop.

use proptest::prelude::*;
use topk_aggressors::netlist::generator::{generate, GeneratorConfig};
use topk_aggressors::netlist::{suite, Circuit, CouplingId};
use topk_aggressors::topk::{
    MaskDelta, Mode, TopKAnalysis, TopKConfig, TopKResult, WhatIfBatch, WhatIfSession,
};

/// Everything observable about a result except wall-clock time.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    set: Vec<usize>,
    sink: usize,
    delay_before: u64,
    delay_after: u64,
    predicted: u64,
    peak_list_width: usize,
    generated: usize,
}

fn fingerprint(r: &TopKResult) -> Fingerprint {
    Fingerprint {
        set: r.couplings().iter().map(|c| c.index()).collect(),
        sink: r.sink().index(),
        delay_before: r.delay_before().to_bits(),
        delay_after: r.delay_after().to_bits(),
        predicted: r.predicted_delay().to_bits(),
        peak_list_width: r.peak_list_width(),
        generated: r.generated_candidates(),
    }
}

fn config(threads: usize) -> TopKConfig {
    // Validation off: the fingerprint then covers exactly what the sweep
    // computes, and the suite stays fast. Batch identity with validation
    // on is covered by the CLI `whatif --batch --audit` smoke.
    TopKConfig { threads, validate: false, ..TopKConfig::default() }
}

/// A deterministic scenario menu over a circuit's couplings: single
/// removals, a pair, an add-back after removal (net no-op), an empty
/// delta, and a duplicate — the shapes a fix-triage script produces.
fn scenario_menu(circuit: &Circuit) -> Vec<MaskDelta> {
    let ids: Vec<CouplingId> = circuit.coupling_ids().collect();
    let mut deltas = vec![MaskDelta::default()];
    for &id in ids.iter().take(3) {
        deltas.push(MaskDelta::remove(&[id]));
    }
    if ids.len() >= 2 {
        deltas.push(MaskDelta::remove(&ids[..2]));
        // Removed and re-added in one delta: ends up enabled (no-op).
        deltas.push(MaskDelta::new(&ids[..1], &ids[..1]));
        // Duplicate of an earlier scenario.
        deltas.push(MaskDelta::remove(&[ids[1]]));
    }
    deltas
}

/// Asserts a batch over `deltas` matches per-scenario sequential
/// `fork().apply` on every observable, for one (mode, threads) point.
fn assert_batch_identity(
    name: &str,
    circuit: &Circuit,
    mode: Mode,
    k: usize,
    threads: usize,
    deltas: &[MaskDelta],
) {
    let engine = TopKAnalysis::new(circuit, config(threads));
    let session = WhatIfSession::start(&engine, mode, k).expect("session start succeeds");
    let batch = WhatIfBatch::from_deltas(deltas.to_vec());
    let out = session.apply_batch(&batch).expect("batch apply succeeds");
    assert_eq!(out.scenarios().len(), deltas.len());
    for (i, delta) in deltas.iter().enumerate() {
        let seq = session.fork().apply(delta).expect("sequential apply succeeds");
        let got = &out.scenarios()[i];
        assert_eq!(
            fingerprint(got.result()),
            fingerprint(seq.result()),
            "{name} {} k={k} threads={threads} scenario {i}: batch diverged from fork().apply",
            mode.name()
        );
        assert_eq!(got.changed_couplings(), seq.changed_couplings(), "{name} scenario {i}");
        assert_eq!(got.dirty_flags(), seq.dirty_flags(), "{name} scenario {i}");
        assert_eq!(got.recomputed_victims(), seq.recomputed_victims(), "{name} scenario {i}");
        assert_eq!(
            got.unmasked_dirty_victims(),
            seq.unmasked_dirty_victims(),
            "{name} scenario {i}"
        );
    }
}

#[test]
fn batch_matches_sequential_applies_on_small_suite() {
    for name in ["i1", "i2"] {
        let circuit = suite::benchmark(name, 42).expect("known benchmark");
        let deltas = scenario_menu(&circuit);
        for mode in [Mode::Addition, Mode::Elimination] {
            for threads in [1usize, 0, 4] {
                assert_batch_identity(name, &circuit, mode, 3, threads, &deltas);
            }
        }
    }
}

#[test]
fn batch_results_are_submission_order_independent() {
    let circuit = suite::benchmark("i1", 42).expect("known benchmark");
    let deltas = scenario_menu(&circuit);
    let mut reversed = deltas.clone();
    reversed.reverse();
    let engine = TopKAnalysis::new(&circuit, config(0));
    for mode in [Mode::Addition, Mode::Elimination] {
        let session = WhatIfSession::start(&engine, mode, 3).expect("session start succeeds");
        let fwd = session
            .apply_batch(&WhatIfBatch::from_deltas(deltas.clone()))
            .expect("forward batch succeeds");
        let rev = session
            .apply_batch(&WhatIfBatch::from_deltas(reversed.clone()))
            .expect("reversed batch succeeds");
        for i in 0..deltas.len() {
            let twin = deltas.len() - 1 - i;
            assert_eq!(
                fingerprint(fwd.scenarios()[i].result()),
                fingerprint(rev.scenarios()[twin].result()),
                "{} scenario {i}: result depends on submission order",
                mode.name()
            );
        }
    }
}

#[test]
fn batch_mask_aware_closure_never_exceeds_oblivious() {
    let circuit = suite::benchmark("i2", 42).expect("known benchmark");
    let engine = TopKAnalysis::new(&circuit, config(0));
    let session =
        WhatIfSession::start(&engine, Mode::Elimination, 3).expect("session start succeeds");
    let out = session
        .apply_batch(&WhatIfBatch::from_deltas(scenario_menu(&circuit)))
        .expect("batch apply succeeds");
    for (i, sc) in out.scenarios().iter().enumerate() {
        assert!(
            sc.recomputed_victims() <= sc.unmasked_dirty_victims(),
            "scenario {i}: mask-aware closure larger than mask-oblivious"
        );
    }
    assert!(out.stats().dirty_victims() <= out.stats().unmasked_dirty_victims());
}

/// The peeled-elimination identity: the incremental peel loop (rounds
/// after the first re-sweep only the peeled cones) must reproduce the
/// from-scratch reference bit for bit — serial and parallel, step sizes
/// that divide k and that leave a smaller final round.
#[test]
fn peeled_elimination_matches_scratch_on_small_suite() {
    for name in ["i1", "i2", "i3", "i4"] {
        let circuit = suite::benchmark(name, 42).expect("known benchmark");
        for threads in [1usize, 0] {
            for (k, step) in [(4usize, 2usize), (3, 2)] {
                let engine = TopKAnalysis::new(&circuit, config(threads));
                let inc = engine.elimination_set_peeled(k, step).expect("incremental peel");
                let scr =
                    engine.elimination_set_peeled_scratch(k, step).expect("from-scratch peel");
                assert_eq!(
                    fingerprint(&inc),
                    fingerprint(&scr),
                    "{name} k={k} step={step} threads={threads}: incremental peel diverged"
                );
            }
        }
    }
}

fn tiny_circuit() -> impl Strategy<Value = Circuit> {
    (0u64..200, 6usize..20, 4usize..16).prop_map(|(seed, gates, couplings)| {
        generate(&GeneratorConfig::new(gates, couplings).with_seed(seed))
            .expect("generator succeeds")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random circuits, random scenario menus, both modes, serial and
    /// auto-parallel: every batch scenario equals its sequential twin.
    #[test]
    fn any_batch_matches_sequential_applies(
        circuit in tiny_circuit(),
        k in 1usize..4,
        stride in 1usize..4,
        phase in 0usize..3,
    ) {
        // Deterministic pseudo-random scenarios: per-coupling removals of
        // every `stride`-th coupling starting at `phase`, plus the whole
        // subset at once and the empty delta.
        let subset: Vec<CouplingId> = circuit
            .coupling_ids()
            .filter(|c| c.index() % stride == phase % stride)
            .collect();
        let mut deltas: Vec<MaskDelta> =
            subset.iter().take(3).map(|&c| MaskDelta::remove(&[c])).collect();
        deltas.push(MaskDelta::remove(&subset));
        deltas.push(MaskDelta::default());
        for mode in [Mode::Addition, Mode::Elimination] {
            for threads in [1usize, 0] {
                assert_batch_identity("generated", &circuit, mode, k, threads, &deltas);
            }
        }
    }

    /// Random circuits: incremental peel == from-scratch peel.
    #[test]
    fn any_peel_matches_scratch(
        circuit in tiny_circuit(),
        k in 2usize..5,
        step in 1usize..3,
    ) {
        let engine = TopKAnalysis::new(&circuit, config(0));
        let inc = engine.elimination_set_peeled(k, step).expect("incremental peel");
        let scr = engine.elimination_set_peeled_scratch(k, step).expect("from-scratch peel");
        prop_assert_eq!(fingerprint(&inc), fingerprint(&scr));
    }
}
