//! The work-stealing scheduler contract, attacked from every side.
//!
//! The sweep hands each victim to whichever worker steals it first, yet
//! the answer must be **bit-identical** to the serial reference schedule
//! at any thread count, under any steal order, budgeted or not — because
//! per-victim enumeration is pure, result slots are disjoint write-once
//! cells, and budget shares are pre-partitioned by victim index instead
//! of charged at a barrier. These tests drive that argument: thread
//! sweeps, an adversarial long-tail circuit, random circuits under
//! random budgets, steal-order shuffling, a panicking stolen task, and a
//! corrupted result slot that the L060 serial-replay audit must catch.

use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;
use topk_aggressors::lint::lint_sched_replay;
use topk_aggressors::netlist::generator::{generate, GeneratorConfig};
use topk_aggressors::netlist::{suite, CellKind, Circuit, CircuitBuilder, Library};
use topk_aggressors::topk::{faultsim, Mode, TopKAnalysis, TopKConfig, TopKResult};

/// The injection registry (and the `DNA_SCHED_SHUFFLE` environment
/// variable) are process-global; tests that touch either serialize here
/// and disarm on drop, even across assertion failures.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

struct Armed(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for Armed {
    fn drop(&mut self) {
        faultsim::disarm_all();
        std::env::remove_var("DNA_SCHED_SHUFFLE");
    }
}

fn armed() -> Armed {
    let guard = FAULT_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    faultsim::silence_injected_panics();
    faultsim::disarm_all();
    Armed(guard)
}

/// Everything observable about a result, with f64 payloads compared by
/// bit pattern — "close enough" is a scheduler bug here.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    set: Vec<usize>,
    sink: usize,
    delay_before: u64,
    delay_after: u64,
    predicted: u64,
    peak_list_width: usize,
    generated: usize,
    truncated: usize,
    skipped: usize,
    quarantined: usize,
}

fn fingerprint(r: &TopKResult) -> Fingerprint {
    let s = r.sweep_stats();
    Fingerprint {
        set: r.couplings().iter().map(|c| c.index()).collect(),
        sink: r.sink().index(),
        delay_before: r.delay_before().to_bits(),
        delay_after: r.delay_after().to_bits(),
        predicted: r.predicted_delay().to_bits(),
        peak_list_width: r.peak_list_width(),
        generated: r.generated_candidates(),
        truncated: s.truncated_victims,
        skipped: s.skipped_victims,
        quarantined: s.quarantined_victims,
    }
}

fn run(circuit: &Circuit, mode: Mode, k: usize, config: TopKConfig) -> TopKResult {
    let engine = TopKAnalysis::new(circuit, config);
    match mode {
        Mode::Addition => engine.addition_set(k),
        Mode::Elimination => engine.elimination_set(k),
    }
    .expect("top-k analysis succeeds")
}

fn unbudgeted(threads: usize) -> TopKConfig {
    TopKConfig { threads, validate: false, ..TopKConfig::default() }
}

/// A budget tight enough that shares actually truncate and skip work, so
/// the identity below proves the *pre-partitioned* semantics, not just
/// the unbudgeted sweep.
fn budgeted(threads: usize) -> TopKConfig {
    TopKConfig {
        global_candidate_budget: Some(24),
        victim_candidate_budget: Some(4),
        ..unbudgeted(threads)
    }
}

/// threads {1, 2, 3, 4, 8} x both modes x budgeted/unbudgeted: every
/// configuration must reproduce the serial reference bit-for-bit.
#[test]
fn thread_count_never_changes_a_bit() {
    let circuit = suite::benchmark("i1", 42).expect("known benchmark");
    for mode in [Mode::Addition, Mode::Elimination] {
        for (label, make) in
            [("unbudgeted", unbudgeted as fn(usize) -> TopKConfig), ("budgeted", budgeted)]
        {
            let serial = fingerprint(&run(&circuit, mode, 3, make(1)));
            for threads in [2, 3, 4, 8] {
                let parallel = fingerprint(&run(&circuit, mode, 3, make(threads)));
                assert_eq!(
                    serial,
                    parallel,
                    "{} threads={threads} {label} diverged from serial",
                    mode.name(),
                );
            }
        }
    }
}

/// One victim with ten times the aggressors of everyone else: the
/// scheduler's worst case, where LPT seeding and stealing matter most
/// and a barrier-charged budget would have drifted with the schedule.
fn long_tail_circuit() -> Circuit {
    let mut b = CircuitBuilder::new(Library::cmos013());
    let a = b.input("a");
    let bb = b.input("b");
    let mut chain = Vec::new();
    let mut prev = a;
    for i in 0..12 {
        let n = b.gate(CellKind::Buf, format!("u{i}"), &[prev]).expect("gate");
        chain.push(n);
        prev = n;
    }
    b.output(prev);
    let hot = b.gate(CellKind::Nand2, "hot", &[a, bb]).expect("gate");
    b.output(hot);
    // Background load: one weak coupling per chain neighbor...
    for w in chain.windows(2) {
        b.coupling(w[0], w[1], 1.5).expect("coupling");
    }
    // ...and the long tail: the hot victim aggressed by ten nets.
    for &n in chain.iter().take(10) {
        b.coupling(hot, n, 6.0).expect("coupling");
    }
    b.build().expect("long-tail circuit builds")
}

#[test]
fn long_tail_victim_is_thread_invariant() {
    let circuit = long_tail_circuit();
    for mode in [Mode::Addition, Mode::Elimination] {
        for make in [unbudgeted as fn(usize) -> TopKConfig, budgeted as fn(usize) -> TopKConfig] {
            let serial = fingerprint(&run(&circuit, mode, 4, make(1)));
            for threads in [2, 3, 4, 8] {
                let parallel = fingerprint(&run(&circuit, mode, 4, make(threads)));
                assert_eq!(
                    serial,
                    parallel,
                    "long tail: {} threads={threads} diverged",
                    mode.name()
                );
            }
        }
    }
    // The tail is real: the parallel run's longest task dominates its
    // worker's busy time, which is exactly what the stats must surface.
    let r = run(&circuit, Mode::Elimination, 4, unbudgeted(4));
    let stats = r.scheduler_stats();
    assert!(stats.tasks() > 0, "the sweep ran through the scheduler");
    assert!(stats.threads() >= 2, "the parallel run used multiple workers");
    assert!(
        stats.tail_task_share() > 0.0 && stats.tail_task_share() <= 1.0,
        "tail share stays a valid fraction: {}",
        stats.tail_task_share()
    );
}

/// Steal-order shuffling (the CI_FULL stress axis): `DNA_SCHED_SHUFFLE`
/// perturbs deque seeding and steal direction but may never change an
/// output bit.
#[test]
fn steal_order_shuffle_never_changes_a_bit() {
    let _guard = armed();
    let circuit = suite::benchmark("i1", 42).expect("known benchmark");
    std::env::remove_var("DNA_SCHED_SHUFFLE");
    let reference = fingerprint(&run(&circuit, Mode::Addition, 3, budgeted(1)));
    for seed in [1u64, 7, 0xdead_beef] {
        std::env::set_var("DNA_SCHED_SHUFFLE", seed.to_string());
        for threads in [2, 4] {
            let shuffled = fingerprint(&run(&circuit, Mode::Addition, 3, budgeted(threads)));
            assert_eq!(reference, shuffled, "shuffle seed {seed} threads={threads} diverged");
        }
    }
}

/// A stolen task that panics quarantines exactly its own victim — the
/// rest of the sweep completes and stays bit-identical to the serial run
/// under the same fault.
#[test]
fn panicking_stolen_task_quarantines_only_its_victim() {
    let _guard = armed();
    let circuit = suite::benchmark("i1", 7).expect("known benchmark");
    let victim = 5;
    assert!(victim < circuit.num_nets());
    faultsim::arm_panic_at_victim(victim);

    let serial = run(&circuit, Mode::Elimination, 2, unbudgeted(1));
    for threads in [2, 4, 8] {
        let parallel = run(&circuit, Mode::Elimination, 2, unbudgeted(threads));
        assert_eq!(parallel.faults().len(), 1, "threads={threads}: exactly one quarantine");
        assert_eq!(parallel.faults().faults()[0].victim().index(), victim);
        assert_eq!(parallel.sweep_stats().quarantined_victims, 1);
        assert_eq!(
            fingerprint(&serial),
            fingerprint(&parallel),
            "threads={threads}: quarantined sweep diverged from serial"
        );
        assert!(parallel.delay_after().is_finite(), "the surviving answer is still valid");
    }
}

/// The L060 pipeline end to end: a clean sweep passes the serial-replay
/// audit; a corrupted parallel result slot is caught both by the audit
/// struct and by the lint rule built on it.
#[test]
fn corrupted_result_slot_is_caught_by_the_replay_audit() {
    let _guard = armed();
    let circuit = suite::benchmark("i1", 7).expect("known benchmark");
    let config = TopKConfig { validate: false, ..TopKConfig::default() };
    let engine = TopKAnalysis::new(&circuit, config);

    // Clean first: the audit must find nothing to flag.
    let clean = engine.sched_audit(Mode::Addition, 2).expect("audit runs");
    assert!(clean.is_clean(), "clean sweep must replay identically: {clean:?}");
    assert_eq!(clean.checked_victims, circuit.num_nets());
    assert!(lint_sched_replay(&clean).is_empty());

    // Corrupting the published slot of a victim whose true I-lists are
    // empty would be invisible (empty == empty), so aim at victims that
    // certainly carry candidates: the endpoints of the winning couplings.
    let result = engine.addition_set(2).expect("clean run succeeds");
    let mut caught = false;
    for &cc in result.couplings() {
        let coupling = circuit.coupling(cc);
        for victim in [coupling.a().index(), coupling.b().index()] {
            faultsim::arm_corrupt_sched_slot(victim);
            let audit = engine.sched_audit(Mode::Addition, 2).expect("audit runs");
            faultsim::disarm_all();
            if audit.is_clean() {
                continue;
            }
            caught = true;
            assert!(
                audit.mismatched_slots.contains(&victim),
                "the corrupted slot {victim} is the one flagged: {audit:?}"
            );
            let diags = lint_sched_replay(&audit);
            assert!(diags.has_errors(), "the audit mismatch surfaces as a lint error");
            let text = diags.render_text();
            assert!(text.contains("L060"), "expected L060 in:\n{text}");
        }
    }
    assert!(caught, "at least one corrupted slot must diverge from the serial replay");
}

fn tiny_circuit() -> impl Strategy<Value = Circuit> {
    (0u64..300, 6usize..24, 4usize..18).prop_map(|(seed, gates, couplings)| {
        generate(&GeneratorConfig::new(gates, couplings).with_seed(seed))
            .expect("generator succeeds")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random circuits under random thread counts AND random budget
    /// pools: the pre-partitioned shares make truncation schedule-free.
    #[test]
    fn budgeted_sweeps_are_schedule_free(
        circuit in tiny_circuit(),
        k in 1usize..4,
        threads in 2usize..9,
        pool in 0usize..64,
    ) {
        let config = TopKConfig {
            global_candidate_budget: Some(pool),
            ..unbudgeted(1)
        };
        for mode in [Mode::Addition, Mode::Elimination] {
            let serial = fingerprint(&run(&circuit, mode, k, config));
            let parallel = fingerprint(&run(
                &circuit,
                mode,
                k,
                TopKConfig { threads, ..config },
            ));
            prop_assert!(
                serial == parallel,
                "{} k={} threads={} pool={} diverged",
                mode.name(), k, threads, pool
            );
        }
    }
}
