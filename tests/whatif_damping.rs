//! The semantic-damping contract: a what-if apply under
//! [`Damping::Semantic`] (corridor prover on) is **f64-bit-identical** to
//! the same apply under [`Damping::Structural`] (prover off) and to a
//! from-scratch run under the resulting mask — at any thread count, in
//! both modes — while every victim the prover skips carries a clean
//! certificate.
//!
//! Companion of `whatif_incremental.rs`: the same fingerprint discipline,
//! applied across the damping axis instead of the thread axis.

use topk_aggressors::netlist::generator::{generate, GeneratorConfig};
use topk_aggressors::netlist::{suite, Circuit, CouplingId};
use topk_aggressors::topk::{
    Damping, MaskDelta, Mode, TopKAnalysis, TopKConfig, TopKResult, WhatIfSession,
};

/// Everything observable about a result except wall-clock time.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    set: Vec<usize>,
    sink: usize,
    delay_before: u64,
    delay_after: u64,
    predicted: u64,
    peak_list_width: usize,
    generated: usize,
}

fn fingerprint(r: &TopKResult) -> Fingerprint {
    Fingerprint {
        set: r.couplings().iter().map(|c| c.index()).collect(),
        sink: r.sink().index(),
        delay_before: r.delay_before().to_bits(),
        delay_after: r.delay_after().to_bits(),
        predicted: r.predicted_delay().to_bits(),
        peak_list_width: r.peak_list_width(),
        generated: r.generated_candidates(),
    }
}

fn config(threads: usize, damping: Damping) -> TopKConfig {
    TopKConfig { threads, damping, validate: false, ..TopKConfig::default() }
}

/// The core identity check on one circuit, mode, and thread count: the
/// fix-loop delta (remove the reported worst set, then add it back)
/// answered under both dampings and from scratch, all three bit-compared.
/// Returns the semantic run's proven-clean total across both deltas.
fn assert_damping_identity(
    name: &str,
    circuit: &Circuit,
    mode: Mode,
    k: usize,
    threads: usize,
) -> usize {
    let sem_engine = TopKAnalysis::new(circuit, config(threads, Damping::Semantic));
    let str_engine = TopKAnalysis::new(circuit, config(threads, Damping::Structural));
    let mut sem =
        WhatIfSession::start(&sem_engine, mode, k).expect("semantic session start succeeds");
    let mut st =
        WhatIfSession::start(&str_engine, mode, k).expect("structural session start succeeds");
    assert_eq!(
        fingerprint(sem.result()),
        fingerprint(st.result()),
        "{name}/{mode:?}/t{threads}: damping must not change the initial full run"
    );

    let fix: Vec<CouplingId> = sem.result().couplings().to_vec();
    let mut proven = 0;
    for delta in [MaskDelta::remove(&fix), MaskDelta::add(&fix)] {
        let sem_out = sem.apply(&delta).expect("semantic apply succeeds");
        let str_out = st.apply(&delta).expect("structural apply succeeds");
        let scratch =
            sem_engine.run_with_mask(mode, k, sem.mask()).expect("from-scratch run succeeds");
        assert_eq!(
            fingerprint(sem_out.result()),
            fingerprint(str_out.result()),
            "{name}/{mode:?}/t{threads}: semantic != structural"
        );
        assert_eq!(
            fingerprint(sem_out.result()),
            fingerprint(&scratch),
            "{name}/{mode:?}/t{threads}: semantic != from-scratch"
        );

        // Bookkeeping: the prover only ever subtracts from the structural
        // closure, one certificate per subtraction; the structural run
        // must not certify anything.
        assert_eq!(
            sem_out.recomputed_victims() + sem_out.proven_clean_victims(),
            sem_out.structural_dirty_victims(),
            "{name}/{mode:?}/t{threads}: damping bookkeeping must add up"
        );
        assert_eq!(sem_out.certificates().len(), sem_out.proven_clean_victims());
        assert_eq!(str_out.proven_clean_victims(), 0);
        assert!(str_out.certificates().is_empty());
        assert_eq!(str_out.recomputed_victims(), str_out.structural_dirty_victims());
        assert!(sem_out.recomputed_victims() <= str_out.recomputed_victims());
        proven += sem_out.proven_clean_victims();
    }
    proven
}

#[test]
fn i1_damping_identity_all_threads_and_modes() {
    let circuit = suite::benchmark("i1", 42).expect("known benchmark");
    let mut proven = 0;
    for mode in [Mode::Addition, Mode::Elimination] {
        for threads in [1usize, 0, 4] {
            proven += assert_damping_identity("i1", &circuit, mode, 5, threads);
        }
    }
    assert!(proven > 0, "the corridor prover must certify at least one victim on i1");
}

/// All-equal coupling caps force near-tie candidate orderings — the
/// adversarial regime for any damping that dares skip work: a single
/// mis-skipped victim flips which of the tied candidates wins, so bit
/// identity here exercises the prover's soundness where it is cheapest
/// to lose.
#[test]
fn near_tie_orderings_stay_bit_identical() {
    for seed in 0..4u64 {
        let mut cfg = GeneratorConfig::new(36, 48);
        cfg.coupling_cap_range = (6.0, 6.0);
        cfg.wire_cap_range = (8.0, 8.0);
        cfg.seed = seed;
        let circuit = generate(&cfg).expect("generator succeeds");
        for mode in [Mode::Addition, Mode::Elimination] {
            assert_damping_identity("near-tie", &circuit, mode, 4, 1);
        }
    }
}

/// The full-size identity sweep on i10 — minutes, not seconds, so it is
/// ignored by default and run by CI only under `CI_FULL=1`
/// (`cargo test -- --ignored`).
#[test]
#[ignore = "i10 is the multi-minute full-suite gate; run with -- --ignored"]
fn i10_damping_identity_full_suite() {
    let circuit = suite::benchmark("i10", 42).expect("known benchmark");
    let mut proven = 0;
    for mode in [Mode::Addition, Mode::Elimination] {
        for threads in [1usize, 0, 4] {
            proven += assert_damping_identity("i10", &circuit, mode, 10, threads);
        }
    }
    assert!(proven > 0, "the corridor prover must certify victims on i10");
}
