//! The level-parallel sweep contract: the thread count never changes the
//! answer, only the wall-clock time.
//!
//! Victims at one dependency level read only strict-fanin I-lists, and the
//! per-victim counters aggregate through order-independent operations
//! (max, sum), so any thread partition must produce **bit-identical**
//! results — down to the f64 payloads, compared here via `to_bits`.

use proptest::prelude::*;
use topk_aggressors::netlist::generator::{generate, GeneratorConfig};
use topk_aggressors::netlist::{suite, Circuit};
use topk_aggressors::topk::{Mode, TopKAnalysis, TopKConfig, TopKResult};

/// Everything observable about a result except wall-clock time.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    set: Vec<usize>,
    sink: usize,
    delay_before: u64,
    delay_after: u64,
    predicted: u64,
    peak_list_width: usize,
    generated: usize,
}

fn fingerprint(r: &TopKResult) -> Fingerprint {
    Fingerprint {
        set: r.couplings().iter().map(|c| c.index()).collect(),
        sink: r.sink().index(),
        delay_before: r.delay_before().to_bits(),
        delay_after: r.delay_after().to_bits(),
        predicted: r.predicted_delay().to_bits(),
        peak_list_width: r.peak_list_width(),
        generated: r.generated_candidates(),
    }
}

/// Runs one mode with an explicit thread count. Validation is off so the
/// fingerprint covers exactly what the sweep computes (the iterative
/// noise analysis has its own tests and no thread dependence).
fn run_with_threads(circuit: &Circuit, mode: Mode, k: usize, threads: usize) -> TopKResult {
    let config = TopKConfig { threads, validate: false, ..TopKConfig::default() };
    let engine = TopKAnalysis::new(circuit, config);
    match mode {
        Mode::Addition => engine.addition_set(k),
        Mode::Elimination => engine.elimination_set(k),
    }
    .expect("top-k analysis succeeds")
}

fn assert_thread_invariant(name: &str, circuit: &Circuit, k: usize) {
    for mode in [Mode::Addition, Mode::Elimination] {
        let serial = fingerprint(&run_with_threads(circuit, mode, k, 1));
        for threads in [0, 3] {
            let parallel = fingerprint(&run_with_threads(circuit, mode, k, threads));
            assert_eq!(
                serial,
                parallel,
                "{name} {} k={k}: threads={threads} diverged from serial",
                mode.name()
            );
        }
    }
}

#[test]
fn small_suite_circuits_are_thread_invariant() {
    for name in ["i1", "i2", "i3", "i4"] {
        let circuit = suite::benchmark(name, 42).expect("known benchmark");
        assert_thread_invariant(name, &circuit, 3);
    }
}

/// The full scaling suite at the paper's k. Minutes in debug builds, so
/// opt-in: `cargo test --release -- --ignored parallel`.
#[test]
#[ignore = "slow: full i1-i10 suite; run with --ignored in release builds"]
fn full_suite_is_thread_invariant() {
    for i in 1..=10 {
        let name = format!("i{i}");
        let circuit = suite::benchmark(&name, 42).expect("known benchmark");
        assert_thread_invariant(&name, &circuit, 10);
    }
}

fn tiny_circuit() -> impl Strategy<Value = Circuit> {
    (0u64..200, 6usize..20, 4usize..16).prop_map(|(seed, gates, couplings)| {
        generate(&GeneratorConfig::new(gates, couplings).with_seed(seed))
            .expect("generator succeeds")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random circuits, random thread counts: always the serial answer.
    #[test]
    fn any_thread_count_matches_serial(
        circuit in tiny_circuit(),
        k in 1usize..4,
        threads in 2usize..6,
    ) {
        for mode in [Mode::Addition, Mode::Elimination] {
            let serial = fingerprint(&run_with_threads(&circuit, mode, k, 1));
            let parallel = fingerprint(&run_with_threads(&circuit, mode, k, threads));
            prop_assert!(serial == parallel,
                "{} k={} threads={} diverged", mode.name(), k, threads);
        }
    }
}
