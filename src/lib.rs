//! # topk-aggressors
//!
//! A from-scratch Rust reproduction of *"Top-k Aggressors Sets in Delay
//! Noise Analysis"* (Gandikota, Chopra, Blaauw, Sylvester, Becer — DAC
//! 2007): crosstalk delay-noise analysis with an implicit-enumeration
//! algorithm that identifies the `k` aggressor–victim couplings whose
//! addition (or elimination) changes the circuit delay the most.
//!
//! This umbrella crate re-exports the workspace's layered public API:
//!
//! * [`waveform`] — piecewise-linear waveform algebra: transitions, noise
//!   pulses, trapezoidal noise envelopes, superposition.
//! * [`netlist`] — gate-level circuits with RC parasitics and coupling
//!   capacitors, plus the synthetic i1–i10 benchmark suite.
//! * [`sta`] — static timing analysis: timing windows, arrival times,
//!   critical paths.
//! * [`noise`] — linear static noise analysis: envelope construction, the
//!   iterative timing-window/delay-noise fixpoint, false-aggressor
//!   filtering.
//! * [`topk`] — the paper's contribution: top-k aggressor **addition** and
//!   **elimination** sets via pseudo aggressors and dominance-pruned
//!   irredundant lists, plus the brute-force and naive baselines.
//! * [`lint`] — the static analyzer / invariant verifier: re-derives every
//!   IR, waveform and engine invariant and reports violations as stable
//!   `L0xx` diagnostics.
//!
//! # Quickstart
//!
//! ```
//! use topk_aggressors::netlist::suite;
//! use topk_aggressors::topk::{TopKAnalysis, TopKConfig};
//!
//! // Generate the smallest synthetic benchmark (59 gates) and find the
//! // three couplings that, added to a noiseless analysis, hurt the most.
//! let circuit = suite::benchmark("i1", 42)?;
//! let engine = TopKAnalysis::new(&circuit, TopKConfig::default());
//! let result = engine.addition_set(3)?;
//! assert_eq!(result.couplings().len(), 3);
//! assert!(result.delay_with() >= result.delay_without());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Accepted `clippy::pedantic` baseline. The CI_FULL pedantic triage in
// `ci.sh` is non-gating; this allowlist keeps its output limited to new
// findings. Numeric casts between index/size types are pervasive and
// intentional here, exact float comparison is the point of the
// bit-identity contracts, and short or similar names mirror the paper's
// notation.
#![allow(
    clippy::cast_lossless,
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::doc_markdown,
    clippy::float_cmp,
    clippy::items_after_statements,
    clippy::many_single_char_names,
    clippy::missing_panics_doc,
    clippy::similar_names,
    clippy::too_many_lines
)]
#![forbid(unsafe_code)]

pub use dna_lint as lint;
pub use dna_netlist as netlist;
pub use dna_noise as noise;
pub use dna_sta as sta;
pub use dna_topk as topk;
pub use dna_waveform as waveform;
